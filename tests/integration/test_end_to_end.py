"""Integration tests: full PoX exchanges under ASAP and APEX.

These tests exercise the whole stack -- assembler, linker, device, CPU,
peripherals, monitors, SW-Att, protocol and verifier -- on the paper's
scenarios.
"""

import pytest

from repro.firmware.blinker import blinker_firmware
from repro.firmware.sensor_logger import SensorParameters, sensor_logger_firmware
from repro.firmware.syringe_pump import (
    PUMP_OUTPUT_LAYOUT,
    PumpParameters,
    STATUS_ABORTED,
    STATUS_COMPLETED,
    busy_wait_pump_firmware,
    syringe_pump_firmware,
)
from repro.firmware.testbench import PoxTestbench, TestbenchConfig
from repro.ltl.parser import parse_ltl
from repro.ltl.trace_checker import bundles_to_trace, check_trace
from repro.peripherals.registers import InterruptVectors


class TestAsapEndToEnd:
    def test_authorized_interrupt_proof_accepted(self):
        """Fig. 5(a): an authorized interrupt leaves the proof valid."""
        bench = PoxTestbench(blinker_firmware(authorized=True), TestbenchConfig())
        result = bench.run_pox(setup=lambda d: d.schedule_button_press(6))
        assert result.accepted
        assert result.claimed_exec == 1
        irq_steps = bench.device.trace.steps_with_irq()
        assert len(irq_steps) == 1
        # The ISR the interrupt dispatched to lies inside ER.
        assert bench.executable.contains(irq_steps[0].next_pc)

    def test_unauthorized_interrupt_proof_rejected(self):
        """Fig. 5(b): an unauthorized interrupt invalidates the proof."""
        bench = PoxTestbench(blinker_firmware(authorized=False), TestbenchConfig())
        result = bench.run_pox(setup=lambda d: d.schedule_button_press(6))
        assert not result.accepted
        assert bench.monitor.exec_value() == 0
        assert bench.monitor.violations_for("ltl1-exit")

    def test_proof_report_contains_ivt_snapshot(self):
        bench = PoxTestbench(blinker_firmware(authorized=True), TestbenchConfig())
        bench.protocol.deliver_challenge()
        bench.protocol.call_executable()
        report = bench.protocol.attest()
        assert "IVT" in report.snapshots
        assert len(report.snapshots["IVT"]) == 32
        result = bench.protocol.verify(report)
        assert result.accepted

    def test_multiple_sequential_proofs_on_same_device(self):
        bench = PoxTestbench(blinker_firmware(authorized=True), TestbenchConfig())
        first = bench.run_pox()
        second = bench.run_pox(setup=lambda d: d.schedule_button_press(6))
        assert first.accepted and second.accepted

    def test_trace_satisfies_paper_ltl_properties(self):
        """The recorded execution satisfies LTL 1, 2 and 4 directly."""
        bench = PoxTestbench(blinker_firmware(authorized=True), TestbenchConfig())
        bench.run_pox(setup=lambda d: d.schedule_button_press(6))
        entries = bench.trace_entries()
        # Reconstruct per-step atoms from the recorded PC stream plus the
        # monitor-exported EXEC signal.
        states = []
        for entry in entries:
            states.append({
                "pc_in_er": bench.executable.contains(entry.pc),
                "pc_at_ermin": entry.pc == bench.executable.er_min,
                "pc_at_ermax": entry.pc == bench.executable.er_max,
                "irq": entry.irq,
                "exec": bool(entry.monitor_signals.get("EXEC", 0)),
            })
        ltl1 = parse_ltl("G (pc_in_er & !X pc_in_er -> pc_at_ermax | !X exec)")
        ltl2 = parse_ltl("G (!pc_in_er & X pc_in_er -> X pc_at_ermin | !X exec)")
        assert check_trace(ltl1, states)
        assert check_trace(ltl2, states)

    def test_bundles_to_trace_helper(self):
        bench = PoxTestbench(blinker_firmware(authorized=True), TestbenchConfig())
        bench.protocol.deliver_challenge()
        bundles = []
        bench.device.cpu.pc = bench.executable.er_min
        for _ in range(30):
            bundles.append(bench.device.step())
        states = bundles_to_trace(bundles, bench.pox_config)
        assert any(state["pc_in_er"] for state in states)
        assert all("Wen" in state for state in states)


class TestApexEndToEnd:
    def test_interrupt_free_execution_accepted(self):
        bench = PoxTestbench(blinker_firmware(authorized=True),
                             TestbenchConfig(architecture="apex"))
        result = bench.run_pox()
        assert result.accepted

    def test_any_interrupt_rejected(self):
        """Fig. 5(c): APEX clears EXEC on any interrupt during ER."""
        bench = PoxTestbench(blinker_firmware(authorized=True),
                             TestbenchConfig(architecture="apex"))
        result = bench.run_pox(setup=lambda d: d.schedule_button_press(6))
        assert not result.accepted
        assert bench.monitor.violations_for("ltl3-interrupt")

    def test_busy_wait_pump_works_under_apex(self):
        bench = PoxTestbench(busy_wait_pump_firmware(PumpParameters(dosage_cycles=60)),
                             TestbenchConfig(architecture="apex"))
        result = bench.run_pox()
        assert result.accepted
        assert bench.output_word(PUMP_OUTPUT_LAYOUT["status"]) == STATUS_COMPLETED

    def test_interrupt_driven_pump_fails_under_apex(self):
        """The motivating gap: the paper's syringe pump cannot be proven
        under APEX because it relies on the timer interrupt."""
        bench = PoxTestbench(syringe_pump_firmware(PumpParameters(dosage_cycles=80)),
                             TestbenchConfig(architecture="apex"))
        result = bench.run_pox()
        assert not result.accepted
        assert bench.monitor.violations_for("ltl3-interrupt")


class TestAsapVsApexComparison:
    def test_same_firmware_same_event_diverging_outcomes(self):
        """The core claim: identical firmware and identical asynchronous
        event, ASAP accepts while APEX rejects."""
        asap = PoxTestbench(blinker_firmware(authorized=True), TestbenchConfig())
        apex = PoxTestbench(blinker_firmware(authorized=True),
                            TestbenchConfig(architecture="apex"))
        asap_result = asap.run_pox(setup=lambda d: d.schedule_button_press(6))
        apex_result = apex.run_pox(setup=lambda d: d.schedule_button_press(6))
        assert asap_result.accepted
        assert not apex_result.accepted

    def test_pump_functional_results_match_between_architectures(self):
        """Without interrupts both architectures accept and produce the
        same outputs (ASAP adds no runtime overhead or behaviour change)."""
        asap = PoxTestbench(busy_wait_pump_firmware(PumpParameters(dosage_cycles=40)),
                            TestbenchConfig())
        apex = PoxTestbench(busy_wait_pump_firmware(PumpParameters(dosage_cycles=40)),
                            TestbenchConfig(architecture="apex"))
        assert asap.run_pox().accepted
        assert apex.run_pox().accepted
        assert asap.output_bytes() == apex.output_bytes()
        assert asap.device.total_cycles == apex.device.total_cycles


class TestSensorLoggerEndToEnd:
    def test_command_bound_to_proof(self):
        bench = PoxTestbench(sensor_logger_firmware(SensorParameters(samples=24)),
                             TestbenchConfig(enable_uart_rx_interrupts=True))
        result = bench.run_pox(setup=lambda d: d.schedule_uart_rx(12, b"\x5A"))
        assert result.accepted
        command = result.output[4] | (result.output[5] << 8)
        assert command == 0x5A

    def test_sensor_value_cannot_be_forged_after_the_fact(self):
        bench = PoxTestbench(sensor_logger_firmware(SensorParameters(samples=8)),
                             TestbenchConfig())
        bench.run_execution_only()
        # Malware inflates the reported sensor sum before attestation.
        bench.device.write_word_as_cpu(bench.pox_config.output.region.start, 0xFFFF)
        result = bench.attest_and_verify()
        assert not result.accepted
