"""Integration tests for the sharded verifier cluster control plane.

The acceptance bars pinned here:

* a lossy fleet **with** retries completes every exchange
  (``all_accepted``), while the *same seeded run* without retries
  times exchanges out -- retransmission is what buys completeness;
* killing a shard mid-run is detected by the heartbeat monitor, the
  shard is evicted, its devices re-enroll on the survivor (in-flight
  exchanges complete there or fail closed) and the run still drains;
* the backpressure gate sheds or delays visibly, never silently;
* enrollment over the wire is refused unless the shard opted in.
"""

import asyncio

import pytest

from repro.cluster import (
    ClusterFleet,
    RetryPolicy,
    ShardedVerifierCluster,
)
from repro.net import Fleet, LinkConditions, VerifierService, loopback_pair

#: The pinned lossy link: 20% loss, deterministic seed.
LOSSY = LinkConditions(loss=0.2, seed=7)


def run(coroutine):
    return asyncio.run(coroutine)


class TestRetriesUnderLoss:
    def test_lossy_fleet_with_retries_completes_everything(self):
        # The satellite's acceptance pin: loss=0.2 plus a bounded retry
        # schedule => every exchange accepted, zero timeouts, and the
        # recovery is visible as a nonzero retransmit count.
        fleet = Fleet(4, architecture="asap", conditions=LOSSY,
                      retry=RetryPolicy(max_attempts=8, base_timeout=0.03))
        report = fleet.run(exchanges_per_device=2, mix=("ra",))
        assert report.exchanges == 8
        assert report.all_accepted(), \
            [r.reason for r in report.results if not r.accepted]
        assert report.timed_out == 0
        assert report.retransmits > 0

    def test_same_lossy_run_without_retries_times_out(self):
        # Identical fleet, identical seeded loss, no retry layer: the
        # only bound is the per-exchange deadline, and dropped frames
        # burn whole exchanges.
        fleet = Fleet(4, architecture="asap", conditions=LOSSY,
                      deadline=0.25)
        report = fleet.run(exchanges_per_device=2, mix=("ra",))
        assert report.exchanges == 8
        assert report.timed_out > 0
        assert not report.all_accepted()
        assert report.retransmits == 0

    def test_unbounded_loss_configuration_is_refused(self):
        with pytest.raises(ValueError, match="retry"):
            Fleet(2, conditions=LOSSY)  # no deadline, no retry
        with pytest.raises(ValueError, match="retry"):
            ClusterFleet(2, conditions=LOSSY,
                         retry=RetryPolicy(max_attempts=None))

    def test_cluster_fleet_with_retries_survives_loss(self):
        fleet = ClusterFleet(4, shards=2, architecture="asap",
                             conditions=LOSSY,
                             retry=RetryPolicy(max_attempts=8,
                                               base_timeout=0.03))
        report = fleet.run(exchanges_per_device=2, mix=("ra",))
        assert report.all_accepted()
        assert report.retransmits > 0


class TestShardedCluster:
    def test_two_shard_fleet_routes_and_accepts(self):
        fleet = ClusterFleet(8, shards=2, architecture="asap")
        report = fleet.run(exchanges_per_device=2, mix=("ra", "pox"))
        assert report.exchanges == 16
        assert report.all_accepted()
        assert report.shard_count == 2
        # Both shards saw traffic (64 virtual nodes spread 8 devices).
        busy = [stats for stats in report.shards if stats.exchanges]
        assert len(busy) == 2
        assert sum(stats.exchanges for stats in report.shards) == 16
        # Challenge tables drained on every shard.
        assert all(stats.pending_challenges == 0 for stats in report.shards)
        # Latency percentiles were recorded for loaded shards.
        assert all(stats.p99_seconds >= stats.p50_seconds > 0
                   for stats in busy)

    def test_kill_shard_evicts_and_fails_over(self):
        # Kill one shard a quarter of the way in: the heartbeat monitor
        # must evict it, the ring must re-home its devices, and every
        # remaining exchange must complete on the survivor or fail
        # closed -- the run itself always drains.
        fleet = ClusterFleet(8, shards=2, architecture="asap",
                             heartbeat=0.05, deadline=2.0)
        victim = "shard-0"
        report = fleet.run(exchanges_per_device=4, mix=("ra",),
                           kill_shard=victim)
        assert report.evictions == 1
        assert report.rebalanced_devices > 0
        assert report.shard_count == 1  # the survivor
        dead = report.shard(victim)
        assert dead is not None and not dead.alive
        survivor = report.shard("shard-1")
        assert survivor.alive and survivor.exchanges > 0
        # Nothing hung: every exchange reached a terminal outcome.
        assert (report.accepted + report.rejected + report.timed_out
                == report.exchanges)
        assert report.accepted > 0

    def test_monitor_evicts_silent_shard_without_traffic(self):
        async def body():
            cluster = ShardedVerifierCluster(shards=2, heartbeat=0.03)
            await cluster.start()
            try:
                await cluster.kill_shard("shard-1")
                deadline = asyncio.get_running_loop().time() + 2.0
                while ("shard-1" in cluster.ring
                       and asyncio.get_running_loop().time() < deadline):
                    await asyncio.sleep(0.02)
                return (cluster.counters["evictions"],
                        list(cluster.ring.nodes))
            finally:
                await cluster.stop()

        evictions, nodes = run(body())
        assert evictions == 1
        assert nodes == ["shard-0"]

    def test_added_shard_takes_ownership(self):
        async def body():
            cluster = ShardedVerifierCluster(shards=1)
            await cluster.start()
            try:
                await cluster.add_shard("shard-late")
                keys = ["prover-%04d" % n for n in range(64)]
                return cluster.ring.placement(keys)
            finally:
                await cluster.stop()

        placement = run(body())
        assert set(placement.values()) == {"shard-0", "shard-late"}


class TestBackpressure:
    def test_shed_mode_refuses_overload_visibly(self):
        fleet = ClusterFleet(6, shards=1, architecture="asap",
                             max_inflight=1, backpressure="shed")
        report = fleet.run(exchanges_per_device=2, mix=("ra",))
        # Six concurrent devices against a one-slot gate: most attempts
        # shed, every admitted exchange accepted, and the shedding is
        # visible in both the report and the shard stats.
        assert report.shed > 0
        assert report.exchanges + report.shed == 12
        assert report.accepted == report.exchanges
        assert sum(stats.shed for stats in report.shards) == report.shed

    def test_delay_mode_completes_everything(self):
        fleet = ClusterFleet(6, shards=1, architecture="asap",
                             max_inflight=2, backpressure="delay")
        report = fleet.run(exchanges_per_device=2, mix=("ra",))
        assert report.exchanges == 12
        assert report.all_accepted()
        assert report.shed == 0
        assert report.delayed > 0  # the queueing was visible


class TestEnrollmentGating:
    def test_wire_enrollment_refused_unless_opted_in(self):
        async def body():
            service = VerifierService()  # allow_enroll defaults False
            client, server_side = loopback_pair()
            serve = asyncio.ensure_future(service.serve(server_side))
            await client.send({"kind": "enroll", "seq": 0,
                               "enrollment": None})
            reply = await client.recv()
            await client.close()
            await serve
            return reply

        reply = run(body())
        assert reply["kind"] == "error"
        assert "enroll" in reply["reason"]
