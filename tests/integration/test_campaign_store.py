"""Integration tests for incremental campaigns and streaming completion.

The acceptance bar for the result store: a warm re-run of an unchanged
sweep executes **zero** scenarios and its rows are byte-identical to
the recomputed ones; concurrent campaigns can share one store directory
without torn reads or leftover temp files.  For streaming,
:meth:`CampaignRunner.run_iter` must yield results as they finish --
on the process backend a fast scenario's result arrives while a slow
one is still executing -- while the generator's return value stays
spec-ordered.
"""

import json
import multiprocessing
import threading

import pytest

from repro.experiments import runners
from repro.sim import (
    CampaignRunner,
    ResultStore,
    ScenarioSpec,
    FirmwareRef,
    StopSpec,
)
from repro.sim.scenario import EPOCH_ENV_VAR


def gallery():
    return runners.security_scenarios()


def comparable(result):
    """Everything that must match between cached and recomputed rows."""
    return (result.name, result.kind, result.ok, result.error,
            result.observations, result.meta, result.expected)


class TestWarmRerun:
    def test_warm_rerun_executes_nothing_and_rows_match(self, tmp_path):
        cold_runner = CampaignRunner(store=tmp_path)
        cold = cold_runner.run(gallery())
        assert cold.all_ok()
        assert cold.store_hits == 0
        assert cold.store_misses == len(cold)
        assert all(not result.cached for result in cold)

        warm_runner = CampaignRunner(store=tmp_path)
        warm = warm_runner.run(gallery())
        assert warm.all_ok()
        assert warm.store_hits == len(warm)
        assert warm.store_misses == 0
        assert all(result.cached for result in warm)
        # The store handle confirms: every lookup hit, nothing written.
        assert warm_runner.store.stats()["writes"] == 0

        # Differential: cached rows byte-identical to recomputed ones.
        assert [comparable(r) for r in warm] == [comparable(r) for r in cold]
        assert json.dumps(warm.rows(), sort_keys=True) \
            == json.dumps(cold.rows(), sort_keys=True)

    def test_cached_rows_match_a_storeless_run(self, tmp_path):
        baseline = CampaignRunner().run(gallery())
        CampaignRunner(store=tmp_path).run(gallery())
        warm = CampaignRunner(store=tmp_path).run(gallery())
        assert [comparable(r) for r in warm] \
            == [comparable(r) for r in baseline]
        assert json.dumps(warm.rows(), sort_keys=True) \
            == json.dumps(baseline.rows(), sort_keys=True)

    def test_spec_change_invalidates_only_that_spec(self, tmp_path):
        specs = gallery()
        CampaignRunner(store=tmp_path).run(specs)
        import dataclasses

        changed = list(specs)
        changed[0] = dataclasses.replace(changed[0],
                                         name=changed[0].name + "-v2")
        outcome = CampaignRunner(store=tmp_path).run(changed)
        assert outcome.store_misses == 1
        assert outcome.store_hits == len(specs) - 1
        assert not outcome[0].cached
        assert all(result.cached for result in outcome[1:])

    def test_code_epoch_bump_forces_a_cold_rerun(self, tmp_path, monkeypatch):
        CampaignRunner(store=tmp_path).run(gallery())
        monkeypatch.setenv(EPOCH_ENV_VAR, "test-epoch-bump")
        outcome = CampaignRunner(store=tmp_path).run(gallery())
        assert outcome.store_hits == 0
        assert outcome.store_misses == len(outcome)

    def test_job_spec_fingerprint_folds_ambient_backends(self, monkeypatch):
        # Job bodies are opaque callables: the process-wide engine and
        # crypto selections can steer what they compute, so both must
        # perturb a job spec's identity (declarative ltl specs stay
        # pinned to neither).
        from repro.cpu.engine import ENV_VAR as ENGINE_ENV_VAR
        from repro.crypto.backend import ENV_VAR as CRYPTO_ENV_VAR

        job = ScenarioSpec(name="fig6", kind="job", job="figure6")
        ltl = ScenarioSpec(name="prop", kind="ltl",
                           ltl_property="vrased-key-no-dma")
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        monkeypatch.delenv(CRYPTO_ENV_VAR, raising=False)
        job_base, ltl_base = job.fingerprint(), ltl.fingerprint()

        monkeypatch.setenv(ENGINE_ENV_VAR, "blocks")
        assert job.fingerprint() != job_base
        assert ltl.fingerprint() == ltl_base
        monkeypatch.delenv(ENGINE_ENV_VAR)

        monkeypatch.setenv(CRYPTO_ENV_VAR, "pure")
        assert job.fingerprint() != job_base
        assert ltl.fingerprint() == ltl_base
        monkeypatch.delenv(CRYPTO_ENV_VAR)
        assert job.fingerprint() == job_base

    def test_warm_job_run_recomputes_across_engine_flip(self, tmp_path,
                                                        monkeypatch):
        # The regression: a store warmed under one engine must not serve
        # job results to a campaign running under another -- the flipped
        # selection reaches the job body, so the cached outcome may be
        # stale for it.
        from repro.cpu.engine import ENV_VAR as ENGINE_ENV_VAR

        specs = [ScenarioSpec(name="fig6-overhead", kind="job",
                              job="figure6")]
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        cold = CampaignRunner(store=tmp_path).run(specs)
        assert cold.store_misses == 1
        warm = CampaignRunner(store=tmp_path).run(specs)
        assert warm.store_hits == 1

        monkeypatch.setenv(ENGINE_ENV_VAR, "blocks")
        flipped = CampaignRunner(store=tmp_path).run(specs)
        assert flipped.store_hits == 0
        assert flipped.store_misses == 1
        assert not flipped[0].cached

    def test_no_reuse_recomputes_but_refreshes_the_store(self, tmp_path):
        CampaignRunner(store=tmp_path).run(gallery())
        runner = CampaignRunner(store=tmp_path, reuse=False)
        outcome = runner.run(gallery())
        assert outcome.store_hits == 0
        assert outcome.store_misses == len(outcome)
        assert all(not result.cached for result in outcome)
        assert runner.store.stats()["writes"] == len(outcome)
        # The refreshed store still serves the next warm run.
        warm = CampaignRunner(store=tmp_path).run(gallery())
        assert warm.store_hits == len(warm)

    def test_path_like_store_builds_a_result_store(self, tmp_path):
        runner = CampaignRunner(store=str(tmp_path / "nested" / "dir"))
        assert isinstance(runner.store, ResultStore)
        assert runner.store.root.is_dir()

    def test_errored_scenarios_are_retried_not_served(self, tmp_path):
        specs = [ScenarioSpec(name="broken",
                              firmware=FirmwareRef.of("no-such-firmware"))]
        first = CampaignRunner(store=tmp_path).run(specs)
        assert not first.all_ok()
        # The crash was not cached: the re-run executes again.
        second = CampaignRunner(store=tmp_path).run(specs)
        assert second.store_hits == 0 and second.store_misses == 1


def _campaign_into_store(store_dir, barrier, queue):
    barrier.wait()  # maximise overlap between the racing campaigns
    outcome = CampaignRunner(store=store_dir).run(
        runners.security_scenarios())
    queue.put((outcome.all_ok(),
               [ (r.name, r.ok, r.observations) for r in outcome ]))


class TestConcurrentStores:
    def test_two_processes_share_a_store_directory(self, tmp_path):
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            pytest.skip("fork start method unavailable")
        barrier = context.Barrier(2)
        queue = context.Queue()
        workers = [
            context.Process(target=_campaign_into_store,
                            args=(str(tmp_path), barrier, queue))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        payloads = [queue.get(timeout=120) for _ in workers]
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0

        assert all(ok for ok, _rows in payloads)
        assert payloads[0][1] == payloads[1][1]  # identical rows
        # The racing writers left a clean store: one complete entry per
        # spec, no temp files, every entry valid JSON.
        store = ResultStore(tmp_path)
        assert len(store) == len(runners.security_scenarios())
        assert not list(tmp_path.rglob("*.tmp"))
        for path in tmp_path.rglob("??/*.json"):
            json.loads(path.read_text())

    def test_put_get_torture_on_one_fingerprint(self, tmp_path):
        from repro.sim.runner import ScenarioResult

        store_handles = [ResultStore(tmp_path) for _ in range(4)]
        fingerprint = "ab" + "0" * 62
        reference = ScenarioResult(
            name="torture", kind="pox",
            observations={"steps": 7}, ok=True, elapsed_seconds=0.1)
        errors = []

        def hammer(store):
            try:
                for _ in range(50):
                    store.put(fingerprint, reference)
                    loaded = store.get(fingerprint)
                    if loaded is not None:
                        assert loaded.name == "torture"
                        assert loaded.observations == {"steps": 7}
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(store,))
                   for store in store_handles]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert not list(tmp_path.rglob("*.tmp"))
        json.loads(store_handles[0].path_for(fingerprint).read_text())


def streaming_specs():
    """One deliberately slow scenario FIRST, then fast ones: streaming
    must surface the fast results while the slow one still executes."""
    slow = ScenarioSpec(
        name="slow-blinker",
        firmware=FirmwareRef.of("blinker"),
        mode="run",
        stop=StopSpec("steps", 600_000),
        max_steps=700_000,
        config_overrides={"trace_enabled": False},
    )
    fast = [
        ScenarioSpec(name="ltl-fast-%d" % index, kind="ltl",
                     ltl_property="vrased-key-no-dma",
                     expect={"holds": True})
        for index in range(4)
    ]
    return [slow] + fast


class TestStreaming:
    def test_process_backend_yields_before_the_slow_spec_finishes(self):
        specs = streaming_specs()
        runner = CampaignRunner(backend="process", jobs=2)
        iterator = runner.run_iter(specs)
        first = next(iterator)
        # The slow spec was dispatched first; a streaming runner hands
        # us a fast result while it is still executing.  An
        # order-preserving (non-streaming) implementation would block
        # on the slow spec and yield it first.
        assert first.name != "slow-blinker"
        names = [first.name]
        while True:
            try:
                names.append(next(iterator).name)
            except StopIteration as finished:
                outcome = finished.value
                break
        assert sorted(names) == sorted(spec.name for spec in specs)
        # The final result is spec-ordered regardless of arrival order.
        assert [r.name for r in outcome] == [spec.name for spec in specs]
        assert outcome.all_ok(), [f.failure_summary()
                                  for f in outcome.failures()]

    def test_run_iter_with_store_yields_hits_first(self, tmp_path):
        specs = gallery()
        CampaignRunner(store=tmp_path).run(specs)
        iterator = CampaignRunner(store=tmp_path).run_iter(specs)
        yielded = []
        while True:
            try:
                yielded.append(next(iterator))
            except StopIteration as finished:
                outcome = finished.value
                break
        assert len(yielded) == len(specs)
        assert all(result.cached for result in yielded)
        assert outcome.store_hits == len(specs)

    def test_on_result_hook_sees_every_completion(self, tmp_path):
        specs = gallery()
        seen = []
        cold = CampaignRunner(store=tmp_path,
                              on_result=lambda r: seen.append(r.cached))
        cold.run(specs)
        warm = CampaignRunner(store=tmp_path,
                              on_result=lambda r: seen.append(r.cached))
        warm.run(specs)
        assert seen == [False] * len(specs) + [True] * len(specs)

    def test_serial_run_iter_matches_run(self):
        specs = gallery()[:4]
        iterator = CampaignRunner().run_iter(specs)
        streamed = []
        while True:
            try:
                streamed.append(next(iterator))
            except StopIteration as finished:
                outcome = finished.value
                break
        assert [comparable(r) for r in streamed] \
            == [comparable(r) for r in outcome]
        assert [r.name for r in outcome] == [spec.name for spec in specs]

    def test_remote_backend_streams_and_stays_spec_ordered(self):
        specs = gallery()[:5]
        iterator = CampaignRunner(backend="remote", jobs=2).run_iter(specs)
        count = 0
        while True:
            try:
                next(iterator)
                count += 1
            except StopIteration as finished:
                outcome = finished.value
                break
        assert count == len(specs)
        assert [r.name for r in outcome] == [spec.name for spec in specs]
        assert outcome.all_ok()
