"""Integration tests for the remote backend's registry/heartbeat layer.

The satellites pinned here:

* a worker killed **between frame header and payload** (mid-frame) has
  its assignment requeued exactly once and the campaign still drains;
* a worker started before its dispatcher retries the connection with
  capped exponential backoff instead of dying on the first refusal;
* a worker that joins and then goes silent (no heartbeats, no results)
  is evicted by the registry sweep -- socket closed, assignment
  requeued -- and a live worker finishes the campaign.
"""

import asyncio
import socket
import struct
import threading

import pytest

from repro.net.remote import _Dispatcher, _connect_with_backoff, worker_loop
from repro.net.transport import open_tcp_listener, read_frame, write_frame
from repro.cluster.registry import WorkerRegistry
from repro.sim import ScenarioSpec


def ltl_specs(count):
    return [
        ScenarioSpec(name="ltl-%d" % index, kind="ltl",
                     ltl_property="vrased-key-no-dma")
        for index in range(count)
    ]


async def _await_done(dispatcher, timeout=30.0):
    await asyncio.wait_for(dispatcher.done.wait(), timeout=timeout)


class TestMidFrameDeath:
    def test_midframe_death_requeues_exactly_once(self):
        # The regression this pins: a worker that dies *inside* a frame
        # -- header written, payload never -- must land the dispatcher
        # in its lost-worker path once, not twice (transport error and
        # eviction both racing to requeue) and not zero times (header
        # mistaken for a short read to retry).
        specs = ltl_specs(3)
        got_assignment = threading.Event()
        release_killer = threading.Event()

        def evil_worker(host, port):
            sock = socket.create_connection((host, port))
            write_frame(sock, {"kind": "ready", "worker": "evil"})
            read_frame(sock)  # take an assignment
            got_assignment.set()
            release_killer.wait(5.0)
            # Half a frame: a 64-byte length header, then death.
            sock.sendall(struct.pack(">I", 64))
            sock.close()

        async def body():
            dispatcher = _Dispatcher(specs)
            server = await open_tcp_listener(dispatcher.handle)
            host, port = server.sockets[0].getsockname()[:2]
            evil = threading.Thread(target=evil_worker, args=(host, port),
                                    daemon=True)
            evil.start()
            # Only once the evil worker holds an assignment does the
            # good worker start: the requeued spec must flow to it.
            while not got_assignment.is_set():
                await asyncio.sleep(0.01)
            good = threading.Thread(target=worker_loop,
                                    args=(host, port, "good"), daemon=True)
            good.start()
            await asyncio.sleep(0.05)
            release_killer.set()
            await _await_done(dispatcher)
            server.close()
            await server.wait_closed()
            evil.join(timeout=5.0)
            good.join(timeout=5.0)
            return dispatcher

        dispatcher = asyncio.run(body())
        assert dispatcher.requeues == 1
        assert dispatcher.remaining == 0
        assert all(result is not None for result in dispatcher.results)
        assert all(result.observations["holds"]
                   for result in dispatcher.results)


class TestReconnectBackoff:
    def test_worker_started_before_dispatcher_connects(self):
        # Reserve a port, point the worker at it while nothing listens,
        # then bring the listener up: the worker's capped-backoff dial
        # loop must find it and serve the whole campaign.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()

        specs = ltl_specs(2)
        worker = threading.Thread(
            target=worker_loop, args=(host, port, "early-bird"),
            kwargs={"connect_attempts": 30, "connect_backoff": 0.02},
            daemon=True)
        worker.start()

        async def body():
            dispatcher = _Dispatcher(specs)
            await asyncio.sleep(0.15)  # let a few refusals happen first
            server = await open_tcp_listener(dispatcher.handle,
                                             host=host, port=port)
            await _await_done(dispatcher)
            server.close()
            await server.wait_closed()
            return dispatcher

        dispatcher = asyncio.run(body())
        worker.join(timeout=5.0)
        assert dispatcher.remaining == 0
        assert all(result is not None for result in dispatcher.results)

    def test_backoff_gives_up_after_bounded_attempts(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()  # nothing will ever listen here
        with pytest.raises(OSError):
            _connect_with_backoff(host, port, attempts=3, base_delay=0.01)


class TestHeartbeatEviction:
    def test_silent_worker_is_evicted_and_its_work_requeued(self):
        specs = ltl_specs(3)
        got_assignment = threading.Event()

        def zombie(host, port):
            sock = socket.create_connection((host, port))
            write_frame(sock, {"kind": "ready", "worker": "zombie"})
            read_frame(sock)  # take an assignment...
            got_assignment.set()
            try:
                read_frame(sock)  # ...then go silent until evicted
            except Exception:
                pass
            finally:
                sock.close()

        async def body():
            registry = WorkerRegistry(heartbeat_timeout=0.15)
            dispatcher = _Dispatcher(specs, registry=registry)
            server = await open_tcp_listener(dispatcher.handle)
            host, port = server.sockets[0].getsockname()[:2]

            async def evictor():
                while True:
                    await asyncio.sleep(0.05)
                    await dispatcher.evict_dead()

            sweep = asyncio.ensure_future(evictor())
            dead = threading.Thread(target=zombie, args=(host, port),
                                    daemon=True)
            dead.start()
            while not got_assignment.is_set():
                await asyncio.sleep(0.01)
            live = threading.Thread(
                target=worker_loop, args=(host, port, "live"),
                kwargs={"heartbeat": 0.05}, daemon=True)
            live.start()
            await _await_done(dispatcher)
            sweep.cancel()
            await asyncio.gather(sweep, return_exceptions=True)
            server.close()
            await server.wait_closed()
            dead.join(timeout=5.0)
            live.join(timeout=5.0)
            return dispatcher, registry

        dispatcher, registry = asyncio.run(body())
        assert registry.counters["evictions"] == 1
        assert "zombie" not in registry
        assert dispatcher.requeues == 1
        assert dispatcher.remaining == 0
        assert all(result is not None for result in dispatcher.results)

    def test_remote_campaign_with_heartbeats_end_to_end(self):
        from repro.net.remote import run_remote_campaign

        specs = ltl_specs(4)
        results = run_remote_campaign(specs, jobs=2, heartbeat=0.05)
        assert len(results) == 4
        assert all(result.ok for result in results)

    def test_campaign_runner_rejects_heartbeat_off_remote(self):
        from repro.sim import CampaignRunner

        with pytest.raises(ValueError, match="remote"):
            CampaignRunner(backend="serial", heartbeat=0.1)

    def test_campaign_runner_threads_heartbeat_to_remote(self):
        from repro.sim import CampaignRunner

        outcome = CampaignRunner(backend="remote", jobs=2,
                                 heartbeat=0.05).run(ltl_specs(3))
        assert outcome.all_ok()
