"""Property-based tests for memory, assembler sizing and LTL semantics."""

from hypothesis import given, settings, strategies as st

from repro.ltl.ast import Atom, Globally, Implies, Next, Not
from repro.ltl.parser import parse_ltl
from repro.ltl.trace_checker import check_trace, evaluate_at, find_violation
from repro.memory.layout import MemoryRegion
from repro.memory.memory import Memory


class TestMemoryProperties:
    @given(st.integers(min_value=0, max_value=0xFFFE),
           st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=200)
    def test_word_write_read_roundtrip(self, address, value):
        memory = Memory()
        memory.write_word(address, value)
        assert memory.peek_word(address) == value

    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.binary(min_size=1, max_size=64))
    @settings(max_examples=200)
    def test_load_dump_roundtrip(self, address, data):
        if address + len(data) > 0x10000:
            address = 0x10000 - len(data)
        memory = Memory()
        memory.load_bytes(address, data)
        assert memory.dump(address, len(data)) == data

    @given(st.integers(min_value=0, max_value=0xFFF0),
           st.integers(min_value=0, max_value=0xF))
    @settings(max_examples=200)
    def test_region_contains_is_consistent_with_bounds(self, start, length):
        region = MemoryRegion(start, start + length)
        for address in (start, start + length):
            assert region.contains(address)
        if start > 0:
            assert not region.contains(start - 1)
        if start + length < 0xFFFF:
            assert not region.contains(start + length + 1)

    @given(st.integers(min_value=0, max_value=0xFF00),
           st.integers(min_value=0, max_value=0xFF),
           st.integers(min_value=0, max_value=0xFF00),
           st.integers(min_value=0, max_value=0xFF))
    @settings(max_examples=200)
    def test_overlap_is_symmetric(self, start_a, len_a, start_b, len_b):
        region_a = MemoryRegion(start_a, start_a + len_a)
        region_b = MemoryRegion(start_b, start_b + len_b)
        assert region_a.overlaps(region_b) == region_b.overlaps(region_a)


#: Random finite traces over three atoms.
traces = st.lists(
    st.fixed_dictionaries({
        "p": st.booleans(),
        "q": st.booleans(),
        "r": st.booleans(),
    }),
    min_size=1,
    max_size=12,
)


class TestLtlSemanticsProperties:
    @given(traces)
    @settings(max_examples=200)
    def test_globally_p_iff_no_violation_found(self, trace):
        formula = Globally(Atom("p"))
        holds = check_trace(formula, trace)
        violation = find_violation(formula, trace)
        assert holds == (violation is None)
        if violation is not None:
            assert not trace[violation]["p"]

    @given(traces)
    @settings(max_examples=200)
    def test_double_negation(self, trace):
        assert check_trace(Not(Not(Atom("p"))), trace) == check_trace(Atom("p"), trace)

    @given(traces)
    @settings(max_examples=200)
    def test_implication_equivalence(self, trace):
        implication = Implies(Atom("p"), Atom("q"))
        disjunction = parse_ltl("!p | q")
        assert check_trace(implication, trace) == check_trace(disjunction, trace)

    @given(traces, st.integers(min_value=0, max_value=11))
    @settings(max_examples=200)
    def test_next_shifts_evaluation(self, trace, position):
        if position >= len(trace) - 1:
            return
        assert evaluate_at(Next(Atom("q")), trace, position) == evaluate_at(
            Atom("q"), trace, position + 1
        )

    @given(traces)
    @settings(max_examples=200)
    def test_globally_monotone_in_suffix(self, trace):
        formula = Globally(Atom("p"))
        if check_trace(formula, trace):
            for position in range(len(trace)):
                assert evaluate_at(formula, trace, position)

    @given(traces)
    @settings(max_examples=150)
    def test_parser_and_str_are_inverse_on_suite_shapes(self, trace):
        formula = parse_ltl("G (p & q -> X r)")
        assert parse_ltl(str(formula)) == formula
        # Semantics preserved through the round trip as well.
        assert check_trace(parse_ltl(str(formula)), trace) == check_trace(formula, trace)
