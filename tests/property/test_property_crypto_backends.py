"""Property tests: crypto backends and zero-copy memory reads agree.

Two differential surfaces, both driven by hypothesis:

* **backends** -- random messages, key lengths and chunkings must give
  byte-identical digests/tags through the ``pure`` reference, the
  ``fast`` backend and the standard library, whatever the split points
  (this is what lets the fast backend be a pure performance decision);
* **memory reads** -- :meth:`Memory.peek_view` must observe exactly the
  bytes :meth:`Memory.dump` copies, for random offsets/lengths, and its
  aliasing semantics (the view tracks later writes; the dump does not)
  are pinned explicitly.
"""

import hashlib
import hmac as std_hmac

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.backend import HashlibSha256, use_backend
from repro.crypto.hmac import Hmac, HmacKey, hmac_sha256
from repro.crypto.sha256 import Sha256
from repro.memory.layout import MemoryRegion
from repro.memory.memory import Memory, MemoryError


def _chunks(message, cut_points):
    """Split *message* at the (sorted, deduplicated) cut points."""
    offsets = sorted({point % (len(message) + 1) for point in cut_points})
    pieces = []
    previous = 0
    for offset in offsets:
        pieces.append(message[previous:offset])
        previous = offset
    pieces.append(message[previous:])
    return pieces


class TestBackendDifferential:
    @given(st.binary(max_size=4096),
           st.lists(st.integers(min_value=0, max_value=4096), max_size=12))
    @settings(max_examples=120)
    def test_digests_identical_for_any_chunking(self, message, cut_points):
        reference = hashlib.sha256(message).digest()
        for hasher_class in (Sha256, HashlibSha256):
            hasher = hasher_class()
            for piece in _chunks(message, cut_points):
                hasher.update(piece)
            assert hasher.digest() == reference, hasher_class.__name__

    @given(st.binary(max_size=2048),
           st.lists(st.integers(min_value=0, max_value=2048), max_size=8))
    @settings(max_examples=60)
    def test_memoryview_chunks_match_bytes_chunks(self, message, cut_points):
        reference = hashlib.sha256(message).digest()
        view = memoryview(message)
        for hasher_class in (Sha256, HashlibSha256):
            hasher = hasher_class()
            previous = 0
            for piece in _chunks(message, cut_points):
                hasher.update(view[previous:previous + len(piece)])
                previous += len(piece)
            assert hasher.digest() == reference, hasher_class.__name__

    @given(st.binary(max_size=200), st.binary(max_size=2048))
    @settings(max_examples=80)
    def test_hmac_identical_across_backends(self, key, message):
        reference = std_hmac.new(key, message, hashlib.sha256).digest()
        for backend in ("pure", "fast"):
            with use_backend(backend):
                assert hmac_sha256(key, message) == reference, backend
                assert HmacKey(key).tag(message) == reference, backend

    @given(st.binary(max_size=100),
           st.lists(st.binary(max_size=300), max_size=6))
    @settings(max_examples=60)
    def test_incremental_hmac_chunking_across_backends(self, key, pieces):
        reference = std_hmac.new(key, b"".join(pieces),
                                 hashlib.sha256).digest()
        for backend in ("pure", "fast"):
            with use_backend(backend):
                mac = Hmac(key)
                for piece in pieces:
                    mac.update(piece)
                assert mac.digest() == reference, backend


class TestMemoryViewDifferential:
    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.integers(min_value=0, max_value=0x800))
    @settings(max_examples=120)
    def test_peek_view_matches_dump(self, start, length):
        memory = Memory()
        memory.load_bytes(0, bytes((i * 31) & 0xFF for i in range(0x10000)))
        in_range = start + length <= memory.size
        if not in_range:
            with pytest.raises(MemoryError):
                memory.peek_view(start, length)
            with pytest.raises(MemoryError):
                memory.dump(start, length)
            return
        view = memory.peek_view(start, length)
        assert len(view) == length
        assert bytes(view) == memory.dump(start, length)

    @given(st.integers(min_value=0, max_value=0xFF00),
           st.integers(min_value=1, max_value=0xFF))
    @settings(max_examples=60)
    def test_view_region_matches_dump_region(self, start, size):
        memory = Memory()
        memory.load_bytes(0, bytes((i * 7) & 0xFF for i in range(0x10000)))
        region = MemoryRegion(start, start + size - 1, "r")
        assert bytes(memory.view_region(region)) == memory.dump_region(region)

    @given(st.integers(min_value=0, max_value=0x7FFF),
           st.integers(min_value=1, max_value=0x100),
           st.integers(min_value=0, max_value=0xFF))
    @settings(max_examples=60)
    def test_view_aliases_later_writes_and_dump_does_not(self, start, length,
                                                         new_value):
        memory = Memory(fill=0xAA)
        view = memory.peek_view(start, length)
        snapshot = memory.dump(start, length)
        target = start + (length // 2)
        memory.write_byte(target, new_value)
        # The documented aliasing semantics: the view observes the
        # mutation, the dump is a stable copy.
        assert view[length // 2] == new_value
        assert snapshot[length // 2] == 0xAA
        assert bytes(view) == memory.dump(start, length)

    @given(st.integers(min_value=0, max_value=0xFF00),
           st.integers(min_value=1, max_value=0x40))
    @settings(max_examples=40)
    def test_views_are_read_only(self, start, length):
        memory = Memory()
        view = memory.peek_view(start, length)
        assert view.readonly
        with pytest.raises(TypeError):
            view[0] = 1

    def test_view_feeds_hashers_identically_to_bytes(self):
        memory = Memory()
        memory.load_bytes(0, bytes(range(256)) * 256)
        region = MemoryRegion(0x0123, 0x0456, "r")
        expected = hashlib.sha256(memory.dump_region(region)).digest()
        for hasher_class in (Sha256, HashlibSha256):
            assert hasher_class(memory.view_region(region)).digest() == expected
