"""Property-based tests for the retry layer's two core guarantees.

* **Liveness**: for any loss rate strictly below 1, an RA exchange with
  unlimited retries under a generous deadline eventually completes --
  retransmission turns probabilistic loss into bounded delay.
* **Safety (at-most-once)**: however many retransmits the loss forced,
  the service issued exactly one challenge and executed exactly one
  verdict for the exchange -- duplicates were answered from the reply
  cache, never re-executed, so a retry can never double-consume a
  challenge or flip/duplicate a terminal verdict.

Plus pure-schedule properties of :class:`RetryPolicy` (monotone,
capped, exhaustible) that need no I/O at all.
"""

import asyncio

from hypothesis import given, settings, strategies as st

from repro.firmware.blinker import blinker_firmware
from repro.net import (
    LinkConditions,
    ProverEndpoint,
    RetryPolicy,
    VerifierService,
    loopback_pair,
    provision_enrollment,
)
from repro.net.fleet import build_prover_bench

#: One shared prover bench: device state is read-only for RA, so every
#: example can re-enroll it into a fresh service.
_BENCH = build_prover_bench(blinker_firmware(authorized=True), "asap",
                            "prover-prop")
_ENROLLMENT = provision_enrollment(_BENCH)

#: Generous per-exchange bound: orders of magnitude above the expected
#: completion time at the worst generated loss rate, so a failure means
#: the retry layer lost liveness, not that the machine was slow.
GENEROUS_DEADLINE = 30.0


def _attestation_under_loss(loss, seed):
    """One RA exchange over a seeded lossy loopback with unlimited
    retries; returns (result, service, prover)."""

    async def body():
        service = VerifierService()
        service.apply_enrollment(_ENROLLMENT)
        conditions = LinkConditions(loss=loss, seed=seed)
        client, server_side = loopback_pair(conditions)
        serve = asyncio.ensure_future(service.serve(server_side))
        prover = ProverEndpoint(
            _BENCH.config.device_id, _BENCH.device,
            _BENCH.protocol.device_key, client, protocol=_BENCH.protocol,
            retry=RetryPolicy(max_attempts=None, base_timeout=0.005,
                              max_timeout=0.05),
        )
        result = await prover.run_attestation(deadline=GENEROUS_DEADLINE)
        await prover.close()
        await serve
        return result, service, prover.retransmits

    return asyncio.run(body())


class TestRetryCompletesUnderLoss:
    @settings(max_examples=12, deadline=None)
    @given(loss=st.floats(min_value=0.0, max_value=0.7),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_any_loss_below_one_eventually_completes(self, loss, seed):
        result, service, _retransmits = _attestation_under_loss(loss, seed)
        assert result.accepted, result.reason
        assert not result.timed_out
        # Liveness settled, safety holds below.
        assert service.pending_challenges == 0

    @settings(max_examples=12, deadline=None)
    @given(loss=st.floats(min_value=0.0, max_value=0.7),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_retransmits_never_duplicate_challenge_or_verdict(self, loss, seed):
        _result, service, retransmits = _attestation_under_loss(loss, seed)
        # Exactly one challenge issued and exactly one verdict executed,
        # no matter how many times frames were retransmitted: every
        # duplicate request was served from the reply cache.
        assert service.counters["challenges"] == 1
        assert service.counters["accepted"] + service.counters["rejected"] == 1
        if retransmits == 0:
            # Nothing was lost, so nothing should look like a duplicate.
            assert service.counters["duplicates"] == 0


class TestRetryPolicySchedule:
    @settings(max_examples=60)
    @given(max_attempts=st.integers(min_value=1, max_value=12),
           base=st.floats(min_value=1e-4, max_value=1.0),
           multiplier=st.floats(min_value=1.0, max_value=4.0),
           cap_factor=st.floats(min_value=1.0, max_value=100.0))
    def test_timeouts_are_monotone_capped_and_exhaustible(
            self, max_attempts, base, multiplier, cap_factor):
        policy = RetryPolicy(max_attempts=max_attempts, base_timeout=base,
                             multiplier=multiplier,
                             max_timeout=base * cap_factor)
        timeouts = list(policy.attempt_timeouts())
        assert len(timeouts) == max_attempts  # the schedule terminates
        assert all(t <= policy.max_timeout for t in timeouts)
        assert all(later >= earlier  # backoff never shrinks
                   for earlier, later in zip(timeouts, timeouts[1:]))
        assert policy.worst_case_seconds() == sum(timeouts)

    @settings(max_examples=30)
    @given(base=st.floats(min_value=1e-4, max_value=1.0),
           multiplier=st.floats(min_value=1.0, max_value=4.0))
    def test_unlimited_schedule_reaches_its_cap(self, base, multiplier):
        policy = RetryPolicy(max_attempts=None, base_timeout=base,
                             multiplier=multiplier, max_timeout=base * 8)
        timeouts = policy.attempt_timeouts()
        seen = [next(timeouts) for _ in range(64)]
        assert not policy.bounded
        assert max(seen) <= policy.max_timeout
        if multiplier > 1.0:
            # The cap is always reached eventually, but a multiplier
            # barely above 1.0 can need far more than 64 attempts to
            # climb 8x (1.03125**63 < 8) -- keep drawing until it lands.
            import math

            attempts_to_cap = math.ceil(
                math.log(policy.max_timeout / base) / math.log(multiplier)) + 2
            for _ in range(max(attempts_to_cap - 64, 0)):
                seen.append(next(timeouts))
            assert seen[-1] == policy.max_timeout  # cap reached
