"""Property-based engine differential: random programs, identical state.

Random ISA programs (reusing the encoding-space strategies from
``test_property_isa``) run to completion under both registered
execution engines; afterwards the devices must agree on every register,
every counter, the crash latch and all 64 KiB of memory.  A second
property fuzzes self-modifying code: a hot loop rewrites its own body
-- a word inside a block the ``blocks`` engine has already compiled --
with an arbitrary 16-bit value, and both engines must still agree on
whatever happens next (including crashing identically).
"""

from hypothesis import given, settings, strategies as st

from test_property_isa import (
    FORMAT_I_OPCODES,
    FORMAT_II_OPCODES,
    instructions,
)

from repro.device.mcu import Device, DeviceConfig
from repro.isa.encoding import encode_instruction
from repro.isa.instructions import Instruction, Opcode, Operand
from repro.peripherals.registers import PeripheralRegisters


ENGINES_UNDER_TEST = ("interp", "blocks")

BASE = 0xE000

#: ``MOV #0x5A80, &WDTCTL`` -- stop the watchdog.  Without it the
#: watchdog peripheral keeps every chunk non-quiescent and the silent
#: fast path (where compiled blocks actually execute) never engages.
_STOP_WATCHDOG = Instruction(
    Opcode.MOV, src=Operand.imm(0x5A80),
    dst=Operand.absolute(PeripheralRegisters.WDTCTL),
)

#: ``JMP $`` -- park the program in a tight self-loop when it falls
#: through its random body (the blocks engine's hottest shape).
_SELF_LOOP = Instruction(Opcode.JMP, jump_offset=-2)


def _assemble_words(instruction_list):
    words = []
    for instruction in instruction_list:
        words.extend(encode_instruction(instruction))
    return words


def _program_bytes(instruction_list):
    words = _assemble_words(
        [_STOP_WATCHDOG] + instruction_list + [_SELF_LOOP])
    data = bytearray()
    for word in words:
        data.append(word & 0xFF)
        data.append((word >> 8) & 0xFF)
    return bytes(data)


def _fresh_device(engine, program, register_values):
    device = Device(DeviceConfig(trace_enabled=False, exec_engine=engine))
    device.memory.load_bytes(BASE, program)
    device.ivt.set_reset_vector(BASE)
    device.reset()
    for index, value in enumerate(register_values, start=4):
        device.cpu.registers[index] = value
    return device


def _final_state(device):
    return {
        "registers": list(device.cpu.registers),
        "step_count": device.cpu.step_count,
        "cycle_count": device.cpu.cycle_count,
        "step_number": device.step_number,
        "crashed": device.crashed,
        "crash_reason": device.crash_reason,
        "watchdog_resets": device.watchdog_resets,
        "memory": device.memory.dump(0, 0x10000),
    }


def _run_both(program, register_values, chunks=(137, 163)):
    states = {}
    for engine in ENGINES_UNDER_TEST:
        device = _fresh_device(engine, program, register_values)
        for chunk in chunks:
            device.run_batch(chunk)
        states[engine] = _final_state(device)
    return states


register_files = st.lists(
    st.integers(min_value=0, max_value=0xFFFF), min_size=12, max_size=12)


@st.composite
def memory_heavy_instructions(draw):
    """Instruction strategy biased toward the v2 compiler's new
    closures: memory-destination Format I (absolute/indexed writeback,
    DADD included) and Format II (RRC/RRA/SWPB/SXT/PUSH over register,
    absolute, indexed, indirect and autoincrement operands).  A slice
    of the unbiased strategy keeps jumps and register shapes in the
    mix so blocks still form and terminate."""
    registers = st.integers(min_value=4, max_value=15)
    addresses = st.integers(min_value=0x0200, max_value=0x03FE)
    offsets = st.integers(min_value=0, max_value=0x00FE)
    memory_destinations = st.one_of(
        addresses.map(Operand.absolute),
        st.tuples(registers, offsets).map(
            lambda pair: Operand.indexed(*pair)),
    )
    rich_sources = st.one_of(
        memory_destinations,
        registers.map(lambda r: Operand.indirect(r)),
        registers.map(lambda r: Operand.indirect(r, autoincrement=True)),
        st.integers(min_value=0, max_value=0xFFFF).map(Operand.imm),
        registers.map(Operand.reg),
    )
    shape = draw(st.sampled_from(
        ("fi-mem", "fi-mem", "fii", "fii", "unbiased")))
    if shape == "fi-mem":
        return Instruction(
            opcode=draw(st.sampled_from(FORMAT_I_OPCODES)),
            src=draw(rich_sources),
            dst=draw(memory_destinations),
            byte_mode=draw(st.booleans()),
        )
    if shape == "fii":
        return Instruction(
            opcode=draw(st.sampled_from(FORMAT_II_OPCODES)),
            src=draw(rich_sources),
            byte_mode=draw(st.booleans()),
        )
    return draw(instructions())


class TestRandomProgramsIdentical:
    @given(
        body=st.lists(instructions(), min_size=1, max_size=16),
        register_values=register_files,
    )
    @settings(max_examples=60, deadline=None)
    def test_both_engines_reach_identical_state(self, body, register_values):
        states = _run_both(_program_bytes(body), register_values)
        assert states["blocks"] == states["interp"]


class TestMemoryHeavyProgramsIdentical:
    @given(
        body=st.lists(memory_heavy_instructions(), min_size=1, max_size=16),
        register_values=register_files,
    )
    @settings(max_examples=60, deadline=None)
    def test_memory_heavy_programs_reach_identical_state(
            self, body, register_values):
        states = _run_both(_program_bytes(body), register_values)
        assert states["blocks"] == states["interp"]


class TestFoundCounterexamples:
    def test_fault_inside_compiled_mutating_block(self):
        """Hypothesis-found: ``RRC #0`` faults at execution time (no
        writeback address) from *inside* a compiled mutating block, and
        the engine must still account the ops that completed before the
        fault -- step_count/cycle_count once drifted here."""
        body = [
            Instruction(Opcode.MOV, src=Operand.reg(4),
                        dst=Operand.reg(4)),
            Instruction(Opcode.MOV, src=Operand.reg(4),
                        dst=Operand.reg(4)),
            Instruction(Opcode.MOV, src=Operand.reg(4),
                        dst=Operand.reg(4)),
            Instruction(Opcode.RRC, src=Operand.imm(0)),
        ]
        states = _run_both(_program_bytes(body), [0] * 12)
        assert states["blocks"] == states["interp"]
        assert states["interp"]["crashed"]


class TestSelfModifyingProgramsIdentical:
    @given(
        rewrite_word=st.integers(min_value=0, max_value=0xFFFF),
        register_values=register_files,
    )
    @settings(max_examples=40, deadline=None)
    def test_rewritten_hot_loop_stays_identical(self, rewrite_word,
                                                register_values):
        # loop: INC R6 / CMP #24, R6 / JL loop -- then smash the INC at
        # `loop` with an arbitrary word and fall into the loop again.
        prologue_len = len(_assemble_words([_STOP_WATCHDOG])) * 2
        loop_address = BASE + prologue_len
        body = [
            Instruction(Opcode.ADD, src=Operand.imm(1),
                        dst=Operand.reg(6)),                       # loop:
            Instruction(Opcode.CMP, src=Operand.imm(24),
                        dst=Operand.reg(6)),
            Instruction(Opcode.JL, jump_offset=0),                 # patched
            Instruction(Opcode.MOV, src=Operand.imm(rewrite_word),
                        dst=Operand.absolute(loop_address)),
            Instruction(Opcode.JMP, jump_offset=0),                # patched
        ]
        # Patch the jump offsets now that sizes are known: JL back to
        # `loop`, JMP back to `loop` as well (re-entering the rewritten
        # body, whatever it now decodes to).
        sizes = [instruction.size_words() * 2 for instruction in body]
        # JL at index 2: target = loop start.
        jl_pc = loop_address + sizes[0] + sizes[1]
        body[2] = Instruction(Opcode.JL,
                              jump_offset=loop_address - (jl_pc + 2))
        jmp_pc = jl_pc + sizes[2] + sizes[3]
        body[4] = Instruction(Opcode.JMP,
                              jump_offset=loop_address - (jmp_pc + 2))

        states = _run_both(_program_bytes(body), register_values,
                           chunks=(151, 249))
        assert states["blocks"] == states["interp"]
