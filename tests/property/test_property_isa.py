"""Property-based tests for the ISA: encode/decode round trips."""

from hypothesis import given, settings, strategies as st

from repro.isa.encoding import decode_instruction, encode_instruction
from repro.isa.instructions import (
    AddressingMode,
    Instruction,
    InstructionFormat,
    Opcode,
    Operand,
)


FORMAT_I_OPCODES = [op for op in Opcode if op.format is InstructionFormat.DOUBLE_OPERAND]
FORMAT_II_OPCODES = [
    op for op in Opcode
    if op.format is InstructionFormat.SINGLE_OPERAND and op is not Opcode.RETI
]
JUMP_OPCODES = [op for op in Opcode if op.format is InstructionFormat.JUMP]


def source_operands():
    registers = st.integers(min_value=4, max_value=15)
    values = st.integers(min_value=0, max_value=0xFFFF)
    return st.one_of(
        registers.map(Operand.reg),
        values.map(Operand.imm),
        values.map(Operand.absolute),
        st.tuples(registers, values).map(lambda pair: Operand.indexed(*pair)),
        registers.map(lambda r: Operand.indirect(r)),
        registers.map(lambda r: Operand.indirect(r, autoincrement=True)),
    )


def destination_operands():
    registers = st.integers(min_value=4, max_value=15)
    values = st.integers(min_value=0, max_value=0xFFFF)
    return st.one_of(
        registers.map(Operand.reg),
        values.map(Operand.absolute),
        st.tuples(registers, values).map(lambda pair: Operand.indexed(*pair)),
    )


@st.composite
def format_i_instructions(draw):
    return Instruction(
        opcode=draw(st.sampled_from(FORMAT_I_OPCODES)),
        src=draw(source_operands()),
        dst=draw(destination_operands()),
        byte_mode=draw(st.booleans()),
    )


@st.composite
def format_ii_instructions(draw):
    return Instruction(
        opcode=draw(st.sampled_from(FORMAT_II_OPCODES)),
        src=draw(source_operands()),
        byte_mode=draw(st.booleans()),
    )


@st.composite
def jump_instructions(draw):
    offset = draw(st.integers(min_value=-512, max_value=511)) * 2
    return Instruction(opcode=draw(st.sampled_from(JUMP_OPCODES)), jump_offset=offset)


def instructions():
    return st.one_of(format_i_instructions(), format_ii_instructions(), jump_instructions())


class TestEncodingRoundTrip:
    @given(instructions())
    @settings(max_examples=300)
    def test_decode_inverts_encode(self, instruction):
        words = encode_instruction(instruction)
        decoded, consumed = decode_instruction(words)
        assert consumed == len(words)
        assert decoded.opcode is instruction.opcode
        assert decoded.byte_mode == instruction.byte_mode
        if instruction.format is InstructionFormat.JUMP:
            assert decoded.jump_offset == instruction.jump_offset
        else:
            assert decoded.src.mode is instruction.src.mode
            if instruction.src.mode in (
                AddressingMode.IMMEDIATE,
                AddressingMode.ABSOLUTE,
                AddressingMode.INDEXED,
                AddressingMode.CONSTANT,
            ):
                assert decoded.src.value == instruction.src.value & 0xFFFF
        if instruction.format is InstructionFormat.DOUBLE_OPERAND:
            assert decoded.dst.mode is instruction.dst.mode

    @given(instructions())
    @settings(max_examples=200)
    def test_encoded_size_matches_declared_size(self, instruction):
        assert len(encode_instruction(instruction)) == instruction.size_words()

    @given(instructions())
    @settings(max_examples=200)
    def test_every_word_fits_16_bits(self, instruction):
        assert all(0 <= word <= 0xFFFF for word in encode_instruction(instruction))

    @given(instructions())
    @settings(max_examples=200)
    def test_cycle_estimate_positive(self, instruction):
        assert instruction.cycles() >= 1
