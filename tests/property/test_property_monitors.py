"""Property-based tests on the security monitors' invariants.

Random sequences of monitor-visible events are generated and the key
ASAP/APEX invariants are checked after every step:

* EXEC is 1 only if execution has (re)started at ER_min and no violation
  happened since that restart;
* under APEX, EXEC is 0 whenever an interrupt occurred inside ER since
  the last restart;
* the IVT-guard FSM is in NotExec iff an IVT write happened since the
  last ER_min restart.
"""

from hypothesis import given, settings, strategies as st

from repro.apex.hwmod import ApexMonitor
from repro.apex.regions import ExecutableRegion, MetadataRegion, OutputRegion, PoxConfig
from repro.core.hwmod import AsapMonitor
from repro.core.ivt_guard import IvtGuard, IvtGuardState
from repro.cpu.signals import MemoryWrite, SignalBundle
from repro.memory.ivt import IVT_BASE, IVT_END
from repro.memory.layout import MemoryRegion


ER_MIN = 0xE000
ER_MAX = 0xE07E
IVT_REGION = MemoryRegion(IVT_BASE, IVT_END, "ivt")


def make_config():
    return PoxConfig(
        executable=ExecutableRegion.spanning(ER_MIN, 0xE07F, entry=ER_MIN, exit=ER_MAX),
        output=OutputRegion.spanning(0x0600, 0x063F),
        metadata=MetadataRegion.at(0x0400),
    )


#: One abstract event: where the PC is, whether an interrupt fired and
#: which (if any) sensitive location gets written.
events = st.lists(
    st.fixed_dictionaries({
        "pc": st.sampled_from([ER_MIN, ER_MIN + 10, ER_MAX, 0xC000, 0xC100]),
        "next_pc": st.sampled_from([ER_MIN, ER_MIN + 12, ER_MAX, 0xC000, 0xC102]),
        "irq": st.booleans(),
        "write": st.sampled_from([
            None, "ivt", "er", "or", "metadata", "unrelated",
        ]),
        "dma": st.booleans(),
    }),
    min_size=1,
    max_size=40,
)


def to_bundle(event, cycle, config):
    write_targets = {
        None: [],
        "ivt": [IVT_BASE + 2],
        "er": [config.executable.region.start + 4],
        "or": [config.output.region.start],
        "metadata": [config.metadata.region.start],
        "unrelated": [0x0800],
    }
    addresses = write_targets[event["write"]]
    writes = [] if event["dma"] else [MemoryWrite(a, 0, 2) for a in addresses]
    dma_writes = [MemoryWrite(a, 0, 2) for a in addresses] if event["dma"] else []
    return SignalBundle(
        cycle=cycle,
        pc=event["pc"],
        next_pc=event["next_pc"],
        irq=event["irq"],
        dma_en=bool(dma_writes),
        writes=writes,
        dma_writes=dma_writes,
    )


class TestAsapMonitorInvariants:
    @given(events)
    @settings(max_examples=150, deadline=None)
    def test_exec_implies_no_violation_since_last_restart(self, sequence):
        config = make_config()
        monitor = AsapMonitor(config)
        violations_since_restart = 0
        started = False
        for cycle, event in enumerate(sequence, start=1):
            before = len(monitor.violations)
            monitor.observe(to_bundle(event, cycle, config))
            new_violations = len(monitor.violations) - before
            if new_violations:
                violations_since_restart += new_violations
            elif event["pc"] == ER_MIN:
                violations_since_restart = 0
                started = True
            if monitor.exec_flag:
                assert started
                assert violations_since_restart == 0
            if violations_since_restart:
                assert not monitor.exec_flag

    @given(events)
    @settings(max_examples=100, deadline=None)
    def test_ivt_write_always_clears_exec(self, sequence):
        config = make_config()
        monitor = AsapMonitor(config)
        for cycle, event in enumerate(sequence, start=1):
            monitor.observe(to_bundle(event, cycle, config))
            if event["write"] == "ivt":
                assert not monitor.exec_flag
                assert monitor.violations_for("ap1-ivt-modified")

    @given(events)
    @settings(max_examples=100, deadline=None)
    def test_interrupts_alone_never_violate_asap(self, sequence):
        config = make_config()
        monitor = AsapMonitor(config)
        for cycle, event in enumerate(sequence, start=1):
            clean = dict(event)
            clean["write"] = None
            # Keep the PC inside ER with legal transitions so only the irq
            # dimension varies.
            clean["pc"] = ER_MIN if cycle == 1 else ER_MIN + 10
            clean["next_pc"] = ER_MIN + 10
            clean["dma"] = False
            monitor.observe(to_bundle(clean, cycle, config))
        assert not monitor.violated


class TestApexMonitorInvariants:
    @given(events)
    @settings(max_examples=100, deadline=None)
    def test_irq_inside_er_always_clears_exec(self, sequence):
        config = make_config()
        monitor = ApexMonitor(config)
        for cycle, event in enumerate(sequence, start=1):
            monitor.observe(to_bundle(event, cycle, config))
            if event["irq"] and config.executable.contains(event["pc"]):
                assert not monitor.exec_flag

    @given(events)
    @settings(max_examples=100, deadline=None)
    def test_apex_violations_are_a_superset_of_asap(self, sequence):
        """Every sequence APEX accepts (EXEC=1), ASAP accepts as well --
        except possibly for AP1, which APEX lacks; filtering IVT writes
        out makes the superset relation exact."""
        config = make_config()
        apex = ApexMonitor(config)
        asap = AsapMonitor(config)
        for cycle, event in enumerate(sequence, start=1):
            if event["write"] == "ivt":
                event = dict(event, write="unrelated")
            bundle = to_bundle(event, cycle, config)
            apex.observe(bundle)
            asap.observe(bundle)
        if apex.exec_flag:
            assert asap.exec_flag


class TestIvtGuardInvariants:
    @given(events)
    @settings(max_examples=150, deadline=None)
    def test_guard_state_tracks_writes_since_restart(self, sequence):
        config = make_config()
        guard = IvtGuard(IVT_REGION, ER_MIN)
        expected_not_exec = False
        for cycle, event in enumerate(sequence, start=1):
            bundle = to_bundle(event, cycle, config)
            guard.observe(bundle)
            if event["write"] == "ivt":
                expected_not_exec = True
            elif expected_not_exec and event["pc"] == ER_MIN:
                expected_not_exec = False
            assert (guard.state is IvtGuardState.NOT_EXEC) == expected_not_exec
