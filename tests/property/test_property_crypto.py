"""Property-based tests: crypto primitives agree with the standard library."""

import hashlib
import hmac as std_hmac

from hypothesis import given, settings, strategies as st

from repro.crypto.hmac import hmac_sha256, verify_hmac
from repro.crypto.keys import constant_time_compare, derive_key
from repro.crypto.sha256 import Sha256, sha256


class TestSha256Properties:
    @given(st.binary(min_size=0, max_size=2048))
    @settings(max_examples=150)
    def test_matches_hashlib(self, message):
        assert sha256(message) == hashlib.sha256(message).digest()

    @given(st.binary(max_size=300), st.binary(max_size=300))
    @settings(max_examples=100)
    def test_incremental_equals_concatenated(self, first, second):
        hasher = Sha256()
        hasher.update(first)
        hasher.update(second)
        assert hasher.digest() == sha256(first + second)

    @given(st.binary(max_size=200), st.binary(min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_distinct_suffixes_give_distinct_digests(self, prefix, suffix):
        assert sha256(prefix) != sha256(prefix + suffix)


class TestHmacProperties:
    @given(st.binary(min_size=0, max_size=128), st.binary(min_size=0, max_size=512))
    @settings(max_examples=150)
    def test_matches_stdlib_hmac(self, key, message):
        assert hmac_sha256(key, message) == std_hmac.new(
            key, message, hashlib.sha256
        ).digest()

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=128))
    @settings(max_examples=100)
    def test_verify_accepts_genuine_tags(self, key, message):
        assert verify_hmac(key, message, hmac_sha256(key, message))

    @given(
        st.binary(min_size=1, max_size=64),
        st.binary(max_size=128),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=100)
    def test_verify_rejects_any_single_byte_corruption(self, key, message, delta, index):
        tag = bytearray(hmac_sha256(key, message))
        original = tag[index]
        tag[index] = (original ^ (delta or 1)) & 0xFF
        assert not verify_hmac(key, message, bytes(tag))


class TestKeyDerivationProperties:
    @given(st.binary(min_size=16, max_size=64), st.text(min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_derivation_deterministic(self, master, label):
        assert derive_key(master, label) == derive_key(master, label)

    @given(st.binary(min_size=16, max_size=64),
           st.text(min_size=1, max_size=20), st.text(min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_distinct_labels_distinct_keys(self, master, label_a, label_b):
        if label_a != label_b:
            assert derive_key(master, label_a) != derive_key(master, label_b)

    @given(st.binary(max_size=64), st.binary(max_size=64))
    @settings(max_examples=150)
    def test_constant_time_compare_equals_python_equality(self, a, b):
        assert constant_time_compare(a, b) == (a == b)
