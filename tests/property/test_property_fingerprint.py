"""Property-based tests of the scenario fingerprint.

The content-addressed result store is only sound if the fingerprint is
*exactly* as fine-grained as the outcome: equal specs must collide
(else warm campaigns re-execute work they already have) and any
perturbation of any spec field must separate (else a store serves a
stale result for a changed scenario).  Random specs and random
single-field perturbations pin both directions, plus the injectivity
of the underlying canonical byte encoding.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.sim import ScenarioSpec, canonical_bytes
from repro.sim.scenario import EventSpec, FirmwareRef, Observe, StopSpec


# ---------------------------------------------------------------- strategies

plain_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)

plain_values = st.recursive(
    plain_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)

firmware_refs = st.builds(
    FirmwareRef,
    builder=st.sampled_from(["blinker", "sensor_logger", "syringe_pump"]),
    kwargs=st.dictionaries(
        st.sampled_from(["authorized", "cycles", "label"]),
        st.one_of(st.booleans(), st.integers(0, 100), st.text(max_size=8)),
        max_size=2,
    ).map(lambda kwargs: tuple(sorted(kwargs.items()))),
)

event_specs = st.builds(
    EventSpec,
    kind=st.sampled_from(["button_press", "uart_rx", "write_word"]),
    step=st.integers(0, 10_000),
    args=st.tuples(st.integers(0, 0xFFFF)),
)

pair_tuples = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.one_of(st.booleans(), st.integers(-100, 100), st.text(max_size=8)),
    max_size=3,
)

scenario_specs = st.builds(
    ScenarioSpec,
    name=st.text(min_size=1, max_size=20),
    kind=st.just("pox"),
    firmware=firmware_refs,
    events=st.lists(event_specs, max_size=3).map(tuple),
    mode=st.sampled_from(["pox", "execution_only", "execution_attest", "run"]),
    post_steps=st.integers(0, 100),
    max_steps=st.integers(1, 50_000),
    stop=st.one_of(st.none(),
                   st.builds(StopSpec, kind=st.just("steps"),
                             value=st.integers(1, 1000))),
    observe=st.lists(st.builds(Observe, name=st.sampled_from(
        ["steps", "crashed", "exec_flag"])), max_size=2).map(tuple),
    expect=pair_tuples,
    meta=pair_tuples,
)


# ---------------------------------------------------------------- properties

@settings(max_examples=60, deadline=None)
@given(scenario_specs)
def test_equal_specs_share_a_fingerprint(spec):
    clone = dataclasses.replace(spec)
    assert clone == spec
    assert clone.fingerprint() == spec.fingerprint()


@settings(max_examples=60, deadline=None)
@given(scenario_specs, scenario_specs)
def test_distinct_specs_separate(left, right):
    # Equality of specs must be *equivalent* to fingerprint equality:
    # random pairs are almost always distinct, so this direction is the
    # collision check.
    assert (left == right) == (left.fingerprint() == right.fingerprint())


PERTURBATIONS = [
    lambda spec: dataclasses.replace(spec, name=spec.name + "~"),
    lambda spec: dataclasses.replace(spec, max_steps=spec.max_steps + 1),
    lambda spec: dataclasses.replace(spec, post_steps=spec.post_steps + 1),
    lambda spec: dataclasses.replace(
        spec, events=spec.events + (EventSpec("button_press", step=99),)),
    lambda spec: dataclasses.replace(
        spec, expect=spec.expect + (("__probe__", True),)),
    lambda spec: dataclasses.replace(
        spec, meta=spec.meta + (("__probe__", 1),)),
    lambda spec: dataclasses.replace(
        spec, config_overrides=spec.config_overrides
        + (("trace_limit", 123_456),)),
    lambda spec: dataclasses.replace(
        spec, firmware=FirmwareRef.of("busy_wait_pump")),
]


@settings(max_examples=60, deadline=None)
@given(scenario_specs, st.integers(0, len(PERTURBATIONS) - 1))
def test_any_perturbation_changes_the_fingerprint(spec, which):
    perturbed = PERTURBATIONS[which](spec)
    assert perturbed != spec
    assert perturbed.fingerprint() != spec.fingerprint()


@settings(max_examples=100, deadline=None)
@given(plain_values, plain_values)
def test_canonical_bytes_is_injective(left, right):
    # The soundness direction: two values that *encode* the same must
    # *be* the same -- an alias here would let two different scenarios
    # share a store entry.  (The converse may legitimately fail --
    # e.g. 0.0 and -0.0 compare equal but encode apart -- which only
    # costs a conservative cache miss, never a wrong hit.)
    if canonical_bytes(left) == canonical_bytes(right):
        assert left == right


@settings(max_examples=100, deadline=None)
@given(plain_values)
def test_canonical_bytes_is_deterministic(value):
    assert canonical_bytes(value) == canonical_bytes(value)
