"""Unit tests for the firmware programs and the PoX testbench harness."""

import pytest

from repro.firmware.blinker import BlinkerParameters, blinker_firmware
from repro.firmware.sensor_logger import SensorParameters, sensor_logger_firmware
from repro.firmware.syringe_pump import (
    PUMP_OUTPUT_LAYOUT,
    PumpParameters,
    STATUS_ABORTED,
    STATUS_COMPLETED,
    busy_wait_pump_firmware,
    syringe_pump_firmware,
)
from repro.firmware.testbench import (
    PoxTestbench,
    TestbenchConfig,
    clear_link_cache,
)
from repro.peripherals.registers import InterruptVectors


class TestLinkCache:
    def test_same_source_reuses_linked_firmware(self):
        clear_link_cache()
        first = PoxTestbench(blinker_firmware(authorized=True))
        second = PoxTestbench(blinker_firmware(authorized=True))
        assert first.firmware is second.firmware

    def test_cache_key_covers_source_and_er_base(self):
        clear_link_cache()
        base = PoxTestbench(blinker_firmware(authorized=True))
        other_source = PoxTestbench(blinker_firmware(authorized=False))
        other_base = PoxTestbench(blinker_firmware(authorized=True),
                                  TestbenchConfig(er_base=0xE100))
        assert base.firmware is not other_source.firmware
        assert base.firmware is not other_base.firmware
        assert other_base.firmware.executable.region.start == 0xE100

    def test_cache_can_be_disabled(self):
        clear_link_cache()
        cached = PoxTestbench(blinker_firmware(authorized=True))
        fresh = PoxTestbench(blinker_firmware(authorized=True),
                             TestbenchConfig(link_cache_enabled=False))
        assert cached.firmware is not fresh.firmware

    def test_devices_stay_isolated_despite_shared_image(self):
        # Corrupting one device's ER must not leak through the shared
        # LinkedFirmware into a later testbench (the image is read-only;
        # each device gets its own copy of the bytes at load time).
        clear_link_cache()
        first = PoxTestbench(blinker_firmware(authorized=True))
        er = first.firmware.executable.region
        pristine = first.device.memory.dump_region(er)
        first.device.memory.load_bytes(er.start, b"\xFF" * 16)
        second = PoxTestbench(blinker_firmware(authorized=True))
        assert second.firmware is first.firmware
        assert second.device.memory.dump_region(er) == pristine

    def test_cached_testbench_still_passes_pox(self):
        clear_link_cache()
        PoxTestbench(blinker_firmware(authorized=True))  # warm the cache
        bench = PoxTestbench(blinker_firmware(authorized=True),
                             TestbenchConfig(architecture="asap"))
        result = bench.run_pox(setup=lambda d: d.schedule_button_press(6))
        assert result.accepted


class TestFirmwareSpecs:
    def test_pump_declares_trusted_isrs(self):
        spec = syringe_pump_firmware()
        assert InterruptVectors.TIMER_A0 in spec.trusted_isrs
        assert InterruptVectors.PORT1 in spec.trusted_isrs
        assert InterruptVectors.UART_RX in spec.trusted_isrs

    def test_busy_wait_pump_has_no_isrs(self):
        spec = busy_wait_pump_firmware()
        assert spec.trusted_isrs == {}
        assert spec.untrusted_isrs == {}

    def test_blinker_authorized_vs_unauthorized(self):
        authorized = blinker_firmware(authorized=True)
        unauthorized = blinker_firmware(authorized=False)
        assert InterruptVectors.PORT1 in authorized.trusted_isrs
        assert InterruptVectors.PORT1 in unauthorized.untrusted_isrs

    def test_sensor_logger_uses_uart_isr(self):
        spec = sensor_logger_firmware()
        assert spec.trusted_isrs == {InterruptVectors.UART_RX: "uart_command_isr"}

    def test_pump_parameters_output_addresses(self):
        params = PumpParameters(or_base=0x0600)
        assert params.output_address("delivered") == 0x0600
        assert params.output_address("status") == 0x0602
        assert params.output_address("command") == 0x0604
        assert set(PUMP_OUTPUT_LAYOUT) == {"delivered", "status", "command"}

    def test_sources_are_parameterised(self):
        small = syringe_pump_firmware(PumpParameters(dosage_cycles=10))
        large = syringe_pump_firmware(PumpParameters(dosage_cycles=5000))
        assert small.source != large.source


class TestTestbenchConstruction:
    def test_invalid_architecture_rejected(self):
        with pytest.raises(ValueError):
            TestbenchConfig(architecture="tpm")

    def test_asap_bench_wiring(self, blinker_bench):
        assert blinker_bench.monitor.architecture == "asap"
        assert blinker_bench.protocol.architecture == "asap"
        assert blinker_bench.executable.region.start == 0xE000

    def test_apex_bench_wiring(self, apex_blinker_bench):
        assert apex_blinker_bench.monitor.architecture == "apex"
        assert apex_blinker_bench.protocol.architecture == "apex"

    def test_firmware_loaded_and_ivt_programmed(self, blinker_bench):
        device = blinker_bench.device
        isr = blinker_bench.firmware.symbol("trusted_isr")
        assert device.ivt.get_vector(InterruptVectors.PORT1) == isr
        assert device.memory.peek_word(0xE000) != 0

    def test_geometry_respects_config(self):
        bench = PoxTestbench(
            blinker_firmware(),
            TestbenchConfig(or_start=0x0700, or_end=0x071F, metadata_start=0x0500),
        )
        assert bench.pox_config.output.region.start == 0x0700
        assert bench.pox_config.metadata.region.start == 0x0500


class TestBlinkerExecution:
    def test_clean_run_without_interrupt(self, blinker_bench):
        result = blinker_bench.run_pox()
        assert result.accepted
        assert blinker_bench.exec_flag == 1
        assert blinker_bench.output_word(0) == BlinkerParameters().loop_iterations

    def test_authorized_interrupt_drives_port5(self, blinker_bench):
        result = blinker_bench.run_pox(setup=lambda d: d.schedule_button_press(6))
        assert result.accepted
        assert blinker_bench.device.gpio5.output_value() & 0x10
        assert blinker_bench.device.interrupt_controller.serviced.get(
            InterruptVectors.PORT1) == 1


class TestSyringePumpExecution:
    def test_full_dosage_delivery(self, pump_bench):
        result = pump_bench.run_pox()
        assert result.accepted
        assert pump_bench.output_word(PUMP_OUTPUT_LAYOUT["status"]) == STATUS_COMPLETED
        assert pump_bench.output_word(PUMP_OUTPUT_LAYOUT["delivered"]) == 120
        # The pump was switched off by the timer ISR.
        assert not pump_bench.device.gpio5.output_value() & 0x01

    def test_abort_button_interrupts_dosage(self):
        bench = PoxTestbench(
            syringe_pump_firmware(PumpParameters(dosage_cycles=1000)),
            TestbenchConfig(),
        )
        result = bench.run_pox(setup=lambda d: d.schedule_button_press(25))
        assert result.accepted
        assert bench.output_word(PUMP_OUTPUT_LAYOUT["status"]) == STATUS_ABORTED
        assert bench.output_word(PUMP_OUTPUT_LAYOUT["delivered"]) < 1000
        assert not bench.device.gpio5.output_value() & 0x01

    def test_abort_over_uart(self):
        bench = PoxTestbench(
            syringe_pump_firmware(PumpParameters(dosage_cycles=1000)),
            TestbenchConfig(enable_uart_rx_interrupts=True),
        )
        result = bench.run_pox(setup=lambda d: d.schedule_uart_rx(25, b"\x41"))
        assert result.accepted
        assert bench.output_word(PUMP_OUTPUT_LAYOUT["status"]) == STATUS_ABORTED
        assert bench.output_word(PUMP_OUTPUT_LAYOUT["command"]) == 0x41

    def test_proof_binds_output(self, pump_bench):
        result = pump_bench.run_pox()
        assert result.output is not None
        delivered = result.output[0] | (result.output[1] << 8)
        assert delivered == 120

    def test_busy_wait_variant_completes_without_interrupts(self):
        bench = PoxTestbench(
            busy_wait_pump_firmware(PumpParameters(dosage_cycles=50)),
            TestbenchConfig(architecture="apex"),
        )
        result = bench.run_pox()
        assert result.accepted
        assert bench.output_word(PUMP_OUTPUT_LAYOUT["status"]) == STATUS_COMPLETED
        assert bench.device.interrupt_controller.total_serviced() == 0


class TestSensorLoggerExecution:
    def test_sampling_with_sensor_input(self):
        bench = PoxTestbench(sensor_logger_firmware(SensorParameters(samples=8)),
                             TestbenchConfig(enable_uart_rx_interrupts=True))
        bench.device.gpio1.assert_input(0x03)  # sensor reads 3
        bench.device.memory.load_bytes(0x0023, bytes([0x00]))  # clear stray IFG
        result = bench.run_pox()
        assert result.accepted
        assert bench.output_word(1) == 8       # count
        assert bench.output_word(0) == 8 * 3   # sum

    def test_command_received_during_sampling(self):
        bench = PoxTestbench(sensor_logger_firmware(SensorParameters(samples=32)),
                             TestbenchConfig(enable_uart_rx_interrupts=True))
        result = bench.run_pox(setup=lambda d: d.schedule_uart_rx(10, b"\xab"))
        assert result.accepted
        assert bench.output_word(2) == 0xAB
