"""Unit tests for scenario fingerprints and the on-disk result store.

The incremental-campaign contract has two halves: a
:meth:`~repro.sim.scenario.ScenarioSpec.fingerprint` that changes
whenever anything that could change the outcome changes (spec fields,
the execution engine, the code epoch), and a
:class:`~repro.sim.store.ResultStore` whose cache hits are exactly the
results that were written -- never torn, never mutated, never a stale
error.  Property-based coverage of the fingerprint lives in
``tests/property/test_property_fingerprint.py``; the campaign-level
integration is ``tests/integration/test_campaign_store.py``.
"""

import dataclasses
import json

import pytest

from repro.cpu.engine import use_engine
from repro.sim import ResultStore, ScenarioSpec, canonical_bytes, code_epoch
from repro.sim.runner import ScenarioResult
from repro.sim.scenario import EPOCH_ENV_VAR, EventSpec, FirmwareRef


def pox_spec(**overrides):
    base = dict(
        name="fp-probe",
        firmware=FirmwareRef.of("blinker"),
        mode="run",
        max_steps=100,
        events=(EventSpec("button_press", step=10),),
        expect={"crashed": False},
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestCanonicalBytes:
    def test_type_tags_keep_lookalikes_apart(self):
        lookalikes = [1, True, 1.0, "1", b"1", (1,), {1: 1}]
        encodings = [canonical_bytes(value) for value in lookalikes]
        assert len(set(encodings)) == len(lookalikes)

    def test_dict_encoding_is_order_insensitive(self):
        assert canonical_bytes({"a": 1, "b": 2}) \
            == canonical_bytes({"b": 2, "a": 1})

    def test_set_encoding_is_order_insensitive(self):
        assert canonical_bytes(frozenset([1, 2, 3])) \
            == canonical_bytes(frozenset([3, 1, 2]))

    def test_nested_structures_differ_from_flattened(self):
        assert canonical_bytes(((1, 2), 3)) != canonical_bytes((1, 2, 3))
        assert canonical_bytes(((1,), (2,))) != canonical_bytes(((1, 2),))

    def test_dataclasses_are_tagged_by_class(self):
        assert canonical_bytes(EventSpec("button_press", step=1)) \
            != canonical_bytes(FirmwareRef("button_press"))

    def test_unencodable_values_raise(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())
        with pytest.raises(TypeError):
            canonical_bytes(lambda: None)


class TestFingerprint:
    def test_deterministic_across_calls_and_instances(self):
        assert pox_spec().fingerprint() == pox_spec().fingerprint()

    def test_each_field_perturbation_changes_it(self):
        reference = pox_spec().fingerprint()
        perturbed = [
            pox_spec(name="other"),
            pox_spec(max_steps=101),
            pox_spec(firmware=FirmwareRef.of("sensor_logger")),
            pox_spec(events=(EventSpec("button_press", step=11),)),
            pox_spec(expect={"crashed": True}),
            pox_spec(meta={"sweep": 1}),
            pox_spec(config_overrides={"trace_enabled": False}),
        ]
        fingerprints = {spec.fingerprint() for spec in perturbed}
        assert reference not in fingerprints
        assert len(fingerprints) == len(perturbed)

    def test_code_epoch_invalidates(self, monkeypatch):
        before = pox_spec().fingerprint()
        monkeypatch.setenv(EPOCH_ENV_VAR, code_epoch() + "-bumped")
        assert pox_spec().fingerprint() != before

    def test_ambient_engine_invalidates_device_specs(self):
        with use_engine("interp"):
            interp = pox_spec().fingerprint()
        with use_engine("blocks"):
            blocks = pox_spec().fingerprint()
        assert interp != blocks

    def test_exec_engine_override_pins_the_fingerprint(self):
        spec = pox_spec(config_overrides={"exec_engine": "interp"})
        with use_engine("interp"):
            pinned_interp = spec.fingerprint()
        with use_engine("blocks"):
            pinned_blocks = spec.fingerprint()
        assert pinned_interp == pinned_blocks

    def test_engine_cannot_influence_ltl_specs(self):
        spec = ScenarioSpec("prop", kind="ltl", ltl_property="some-prop")
        with use_engine("interp"):
            interp = spec.fingerprint()
        with use_engine("blocks"):
            blocks = spec.fingerprint()
        assert interp == blocks


def result(**overrides):
    base = dict(
        name="r1",
        kind="pox",
        observations={"steps": 100, "crashed": False},
        meta={"sweep": "demo"},
        expected={"crashed": False},
        ok=True,
        elapsed_seconds=0.25,
    )
    base.update(overrides)
    return ScenarioResult(**base)


FP = "ab" + "0" * 62


class TestResultStore:
    def test_round_trip_preserves_every_field(self, tmp_path):
        store = ResultStore(tmp_path)
        original = result()
        assert store.put(FP, original)
        loaded = store.get(FP)
        assert loaded.cached is True
        assert dataclasses.replace(loaded, cached=False) == original
        assert loaded.row == original.row

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(FP) is None
        assert store.stats()["misses"] == 1
        assert FP not in store

    def test_errored_results_are_never_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.put(FP, result(ok=False, error="Traceback ..."))
        assert store.get(FP) is None
        assert store.stats()["skipped"] == 1

    def test_deterministic_failures_are_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        mismatch = result(ok=False, observations={"crashed": True})
        assert store.put(FP, mismatch)
        assert store.get(FP).ok is False

    def test_unrepresentable_observations_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        # JSON would silently decode the tuple back as a list; the
        # round-trip guard must refuse to cache the mutated form.
        assert not store.put(FP, result(observations={"pair": (1, 2)}))
        assert not store.put(FP, result(observations={"inf": float("inf")}))
        assert store.stats()["skipped"] == 2
        assert len(store) == 0

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(FP, result())
        store.path_for(FP).write_text("{ torn")
        assert store.get(FP) is None
        # The writeback then repairs it.
        store.put(FP, result())
        assert store.get(FP) is not None

    def test_wrong_fingerprint_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        other = "cd" + "0" * 62
        store.put(other, result())
        store.path_for(FP).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(FP).write_text(store.path_for(other).read_text())
        assert store.get(FP) is None

    def test_format_bump_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(FP, result())
        payload = json.loads(store.path_for(FP).read_text())
        payload["format"] = -1
        store.path_for(FP).write_text(json.dumps(payload))
        assert store.get(FP) is None

    def test_no_temp_files_survive_a_put(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(FP, result())
        assert not list(tmp_path.rglob("*.tmp"))

    def test_len_contains_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(FP, result())
        store.put("cd" + "0" * 62, result(name="r2"))
        assert len(store) == 2 and FP in store
        assert store.clear() == 2
        assert len(store) == 0

    def test_prune_by_count_drops_oldest_first(self, tmp_path):
        import os

        store = ResultStore(tmp_path)
        fingerprints = ["%02x" % index + "0" * 62 for index in range(4)]
        for index, fingerprint in enumerate(fingerprints):
            store.put(fingerprint, result(name="r%d" % index))
            os.utime(store.path_for(fingerprint), (1000 + index, 1000 + index))
        assert store.prune(max_entries=2) == 2
        assert fingerprints[0] not in store and fingerprints[1] not in store
        assert fingerprints[2] in store and fingerprints[3] in store

    def test_prune_by_age(self, tmp_path):
        import os

        store = ResultStore(tmp_path)
        store.put(FP, result())
        os.utime(store.path_for(FP), (1000, 1000))
        assert store.prune(max_age_seconds=60, now=2000) == 1
        assert FP not in store

    def test_prune_rejects_negative_cap(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path).prune(max_entries=-1)

    def test_short_fingerprint_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path).path_for("ab")
