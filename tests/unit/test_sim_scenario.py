"""Unit tests for the declarative scenario layer (``repro.sim``)."""

import pickle

import pytest

from repro.firmware.blinker import blinker_firmware
from repro.firmware.testbench import PoxTestbench, TestbenchConfig
from repro.sim import (
    EventSpec,
    FirmwareRef,
    Observe,
    ScenarioSpec,
    StopSpec,
    register_firmware_builder,
    run_scenario,
)
from repro.sim.scenario import FIRMWARE_BUILDERS


def fig5a_spec(**overrides):
    """The Fig. 5(a) scenario as a spec (the canonical test subject)."""
    fields = dict(
        name="fig5a",
        firmware=FirmwareRef.of("blinker", authorized=True),
        config=TestbenchConfig(architecture="asap"),
        events=(EventSpec("button_press", step=6),),
        observe=(Observe("accepted", key="proof accepted"),
                 Observe("exec_flag"),
                 Observe("first_irq_in_er")),
        expect={"proof accepted": True},
        meta={"scenario": "fig5a"},
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestFirmwareRef:
    def test_builds_registered_firmware(self):
        firmware = FirmwareRef.of("blinker", authorized=False).build()
        assert firmware.name.startswith("blinker")

    def test_unknown_builder_reports_registered_names(self):
        with pytest.raises(KeyError, match="blinker"):
            FirmwareRef.of("no-such-firmware").build()

    def test_registration_extends_vocabulary(self):
        register_firmware_builder("blinker-alias", blinker_firmware)
        try:
            firmware = FirmwareRef.of("blinker-alias", authorized=True).build()
            assert firmware.trusted_isrs
        finally:
            del FIRMWARE_BUILDERS["blinker-alias"]

    def test_kwargs_are_ordered_pairs(self):
        ref = FirmwareRef.of("blinker", authorized=True)
        assert ref.kwargs == (("authorized", True),)


class TestScenarioSpec:
    def test_spec_is_picklable_and_round_trips(self):
        spec = fig5a_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_dict_fields_normalise_to_pairs(self):
        spec = fig5a_spec()
        assert spec.expect == (("proof accepted", True),)
        assert spec.meta == (("scenario", "fig5a"),)
        assert spec.expectations() == {"proof accepted": True}
        assert spec.metadata() == {"scenario": "fig5a"}

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ScenarioSpec(name="bad", kind="nope")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            fig5a_spec(mode="sideways")

    def test_invalid_stop_kind_rejected(self):
        with pytest.raises(ValueError, match="stop kind"):
            StopSpec(kind="eventually")

    def test_stop_spec_values_validated(self):
        with pytest.raises(ValueError, match="positive step count"):
            StopSpec("steps")  # the default value of 0 would run nothing
        with pytest.raises(ValueError, match="16-bit address"):
            StopSpec("pc", 0x10000)

    def test_config_overrides_apply_on_top_of_base(self):
        spec = fig5a_spec(config_overrides={"trace_limit": 64,
                                            "architecture": "apex"})
        config = spec.testbench_config()
        assert config.architecture == "apex"
        assert config.trace_limit == 64
        # the base config object is not mutated
        assert spec.config.architecture == "asap"

    def test_from_spec_equals_manual_construction(self):
        spec = fig5a_spec()
        from_spec = PoxTestbench.from_spec(spec)
        manual = PoxTestbench(blinker_firmware(authorized=True),
                              TestbenchConfig(architecture="asap"))
        from_spec.device.run_steps(50)
        manual.device.run_steps(50)
        assert from_spec.trace_entries() == manual.trace_entries()

    def test_from_spec_requires_firmware(self):
        with pytest.raises(ValueError, match="firmware"):
            PoxTestbench.from_spec(fig5a_spec(firmware=None))


class TestRunScenario:
    def test_pox_scenario_produces_expected_row(self):
        result = run_scenario(fig5a_spec())
        assert result.ok and result.error is None
        assert result.row == {"scenario": "fig5a", "proof accepted": True,
                              "exec_flag": 1, "first_irq_in_er": True}

    def test_event_schedule_is_applied(self):
        # Without the button press the blinker never services an IRQ.
        result = run_scenario(fig5a_spec(events=(),
                                         expect={"proof accepted": True}))
        assert result.observations["first_irq_in_er"] is None

    def test_expectation_mismatch_flags_not_ok(self):
        result = run_scenario(fig5a_spec(expect={"proof accepted": False}))
        assert not result.ok and result.error is None
        assert "expectation failed" in result.failure_summary()

    def test_error_is_captured_not_raised(self):
        result = run_scenario(fig5a_spec(
            firmware=FirmwareRef.of("no-such-firmware")))
        assert not result.ok
        assert "no-such-firmware" in result.error
        assert "raised" in result.failure_summary()

    def test_unknown_observer_is_an_isolated_error(self):
        result = run_scenario(fig5a_spec(observe=(Observe("bogus"),)))
        assert not result.ok and "bogus" in result.error

    def test_default_observations_for_pox_mode(self):
        result = run_scenario(fig5a_spec(observe=(), expect={}))
        assert result.ok, result.error
        assert set(result.observations) == {"accepted", "exec_flag"}

    def test_default_observations_for_non_attesting_modes(self):
        # Modes that never attest have no protocol result; the default
        # observations must not demand one.
        for mode in ("execution_only", "run"):
            result = run_scenario(fig5a_spec(
                mode=mode, stop=StopSpec("steps", 30),
                observe=(), expect={"crashed": False}))
            assert result.ok, (mode, result.error)
            assert result.observations["steps"] > 0

    def test_run_mode_with_step_stop(self):
        spec = fig5a_spec(mode="run", stop=StopSpec("steps", 40),
                          observe=(Observe("steps"),), expect={"steps": 40})
        result = run_scenario(spec)
        assert result.ok, result.error

    def test_run_mode_with_pc_stop(self):
        bench = PoxTestbench.from_spec(fig5a_spec())
        target = bench.executable.er_min
        spec = fig5a_spec(mode="run", stop=StopSpec("pc", target),
                          observe=(Observe("crashed"),),
                          expect={"crashed": False})
        result = run_scenario(spec)
        assert result.ok, result.error

    def test_attack_kind_runs_gallery_scenario(self):
        result = run_scenario(ScenarioSpec(
            name="benign-baseline", kind="attack",
            expect={"detected": True}))
        assert result.ok, result.error
        assert result.observations["accepted"] is True

    def test_ltl_kind_checks_named_property(self):
        result = run_scenario(ScenarioSpec(
            name="ltl-smoke", kind="ltl",
            ltl_property="vrased-key-access-control",
            expect={"holds": True}))
        assert result.ok, result.error
        assert result.observations["states"] > 0

    def test_ltl_kind_unknown_property_is_isolated(self):
        result = run_scenario(ScenarioSpec(name="nope", kind="ltl"))
        assert not result.ok and "unknown LTL property" in result.error

    def test_results_are_picklable(self):
        result = run_scenario(fig5a_spec())
        clone = pickle.loads(pickle.dumps(result))
        assert clone.row == result.row
