"""Unit tests for the decoded-instruction cache and its invalidation.

The cache is only sound if **every** mutation path of memory drops the
decoded entries covering the touched bytes: CPU bus writes, DMA word
moves (which use the load-time store), and load-time programming
(reflashing).  The attack gallery deliberately rewrites code, so these
tests exercise exactly those paths.
"""

import pytest

from repro.cpu.decode_cache import DecodeCache, FULL_FLUSH_THRESHOLD
from repro.device.mcu import Device, DeviceConfig
from repro.isa.assembler import Assembler
from repro.memory.memory import Memory


def load_program(device, source, base=0xE000):
    image = Assembler().assemble(
        ".section .text\n" + source, section_addresses={".text": base}
    )
    image.write_to(device.memory)
    device.ivt.set_reset_vector(base)
    device.reset()
    return image


class TestDecodeCacheUnit:
    def test_store_and_lookup(self):
        cache = DecodeCache()
        cache.store(0xE000, "instr", 2, "NOP", 1)
        assert cache.lookup(0xE000) == ("instr", 2, "NOP", 1)
        assert cache.lookup(0xE002) is None
        assert cache.hits == 1 and cache.misses == 1

    def test_invalidate_covers_preceding_instructions(self):
        # A 3-word instruction starting 4 bytes before the write still
        # spans the written word and must be dropped.
        cache = DecodeCache()
        cache.store(0xE000, "i", 6, "MOV", 1)
        cache.invalidate_range(0xE004, 2)
        assert cache.lookup(0xE000) is None

    def test_invalidate_leaves_unrelated_entries(self):
        cache = DecodeCache()
        cache.store(0xE000, "a", 2, "A", 1)
        cache.store(0xE010, "b", 2, "B", 1)
        cache.invalidate_range(0xE010, 2)
        assert cache.lookup(0xE000) == ("a", 2, "A", 1)
        assert cache.lookup(0xE010) is None

    def test_write_outside_cached_span_is_cheap_reject(self):
        cache = DecodeCache()
        cache.store(0xE000, "a", 2, "A", 1)
        cache.invalidate_range(0x0100, 2)  # peripheral register page
        assert cache.invalidations == 0
        assert len(cache) == 1

    def test_large_invalidation_flushes_everything(self):
        cache = DecodeCache()
        for offset in range(0, 32, 2):
            cache.store(0xE000 + offset, "i", 2, "I", 1)
        cache.invalidate_range(0xE000, FULL_FLUSH_THRESHOLD + 1)
        assert len(cache) == 0

    def test_invalidation_near_address_zero_does_not_wrap(self):
        cache = DecodeCache()
        cache.store(0x0000, "i", 2, "I", 1)
        cache.invalidate_range(0x0001, 1)
        assert cache.lookup(0x0000) is None

    def test_low_write_invalidates_wrapping_top_of_memory_entry(self):
        # An instruction cached at 0xFFFC spans (mod 64K) into bytes
        # 0x0000/0x0001; a write there must drop it.
        cache = DecodeCache()
        cache.store(0xFFFC, "i", 6, "MOV", 1)
        cache.invalidate_range(0x0000, 2)
        assert cache.lookup(0xFFFC) is None

    def test_stats_shape(self):
        cache = DecodeCache()
        cache.store(0xE000, "i", 2, "I", 1)
        cache.lookup(0xE000)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert 0.0 <= stats["hit_rate"] <= 1.0


class TestDecodeCacheInDevice:
    def test_cache_populates_and_hits(self, device):
        load_program(device, "loop:\nINC R6\nJMP loop\n")
        device.run_steps(20)
        assert device.decode_cache is not None
        assert len(device.decode_cache) == 2
        assert device.decode_cache.hits > 0

    def test_disabled_cache_is_absent(self):
        device = Device(DeviceConfig(decode_cache_enabled=False))
        assert device.decode_cache is None
        assert device.cpu.decode_cache is None

    def test_cpu_write_invalidates_stale_decode(self, device):
        # The program patches a later instruction (MOV #1, R10 is
        # replaced by MOV #0, R10) via a plain CPU store; the cached
        # decode of the original bytes must not survive the write.
        source = (
            "MOV #0x430A, &target\n"   # patch target to "MOV #0, R10"
            "NOP\n"
            "target:\n"
            "MOV #1, R10\n"
            "done:\nJMP done\n"
        )
        image = load_program(device, source)
        target = image.symbol("target")
        # Warm the cache with the original target bytes.
        device.cpu._fetch(target)
        assert device.decode_cache.lookup(target) is not None
        device.run_steps(6)
        # R10 must be 0, not 1: the executed instruction came from the
        # patched bytes, not the stale cached decode.
        assert device.memory.peek_word(target) == 0x430A
        assert device.cpu.registers[10] == 0

    def test_self_modifying_code_sees_fresh_bytes(self, device):
        # First pass executes MOV #1, R10; then the program rewrites that
        # slot and jumps back, and the second pass must execute the new
        # instruction (MOV #2 -> R11 encoded via registers would be
        # complex to patch by hand, so we patch to NOP = MOV #0, CG and
        # check R10 keeps its first-pass value while R11 proves the loop
        # ran twice).
        source = (
            "start:\n"
            "INC R11\n"            # pass counter
            "CMP #2, R11\n"
            "JEQ done\n"
            "target:\n"
            "MOV #1, R10\n"        # two words: 0x403A 0x0001
            "MOV #0x4303, &0xE008\n"  # overwrite target opcode with NOP
            "MOV #0x4303, &0xE00A\n"  # and its extension word slot
            "JMP start\n"
            "done:\nJMP done\n"
        )
        load_program(device, source)
        device.run_steps(40)
        # Second pass executed the patched NOPs, not MOV #1, R10 --
        # but R10 was set on the first pass.
        assert device.cpu.registers[11] == 2
        assert device.cpu.registers[10] == 1
        assert device.memory.peek_word(0xE008) == 0x4303

    def test_dma_write_into_code_invalidates(self, device):
        # DMA copies new code over the instruction stream while the CPU
        # spins; the CPU must execute the DMA-written bytes.  DMA uses
        # the load-time store path, which must also invalidate.
        source = (
            "loop:\n"
            "CMP #1, R15\n"
            "JNE loop\n"
            "target:\n"
            "MOV #1, R10\n"        # will be overwritten by DMA with NOPs
            "NOP\n"
            "done:\nJMP done\n"
        )
        image = load_program(device, source)
        target = image.symbol("target")
        # Stage NOP words (0x4303) at 0x0200 and DMA them over the MOV.
        device.memory.load_word(0x0200, 0x4303)
        device.memory.load_word(0x0202, 0x4303)
        device.run_steps(4)  # warm cache on the loop
        # Decode the MOV once so it is definitely cached.
        device.cpu._fetch(target)
        assert device.decode_cache.lookup(target) is not None
        device.dma.configure(source=0x0200, destination=target, size_words=2)
        device.dma.trigger()
        device.run_steps(4)  # transfer completes (one word per step)
        device.cpu.registers[15] = 1  # release the spin loop
        device.run_steps(6)
        assert device.cpu.registers[10] == 0  # MOV was replaced by NOPs

    def test_reflash_invalidates(self, device):
        load_program(device, "MOV #1, R10\ndone:\nJMP done\n")
        device.run_steps(4)
        assert device.cpu.registers[10] == 1
        # Reflash with different firmware at the same base.
        load_program(device, "MOV #7, R10\ndone:\nJMP done\n")
        device.run_steps(4)
        assert device.cpu.registers[10] == 7

    def test_memory_write_listener_fires_for_all_mutations(self):
        memory = Memory()
        seen = []
        memory.add_write_listener(lambda address, length: seen.append((address, length)))
        memory.write_byte(0x10, 0xAA)
        memory.write_word(0x20, 0xBEEF)
        memory.load_bytes(0x30, b"\x01\x02\x03")
        memory.load_word(0x40, 0x1234)
        memory.fill(0x50, 8, 0xFF)
        assert seen == [(0x10, 1), (0x20, 2), (0x30, 3), (0x40, 2), (0x50, 8)]
        memory.remove_write_listener(memory._write_listeners[0])
        memory.write_byte(0x10, 0xBB)
        assert len(seen) == 5
