"""Unit tests for :class:`repro._lru.LruDict` (the bounded cache
backing the linked-firmware and LTL-model caches)."""

import threading

import pytest

from repro._lru import LruDict


class TestBasics:
    def test_put_get_roundtrip(self):
        cache = LruDict(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_get_missing_returns_default(self):
        cache = LruDict(4)
        assert cache.get("missing") is None
        assert cache.get("missing", 42) == 42

    def test_setdefault_keeps_first_winner(self):
        cache = LruDict(4)
        assert cache.setdefault("k", "first") == "first"
        assert cache.setdefault("k", "second") == "first"
        assert cache.get("k") == "first"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LruDict(0)
        with pytest.raises(ValueError):
            LruDict(-3)

    def test_clear_empties_and_bool(self):
        cache = LruDict(2)
        assert not cache
        cache.put("a", 1)
        assert cache
        cache.clear()
        assert not cache and len(cache) == 0


class TestEviction:
    def test_insert_beyond_capacity_evicts_oldest(self):
        cache = LruDict(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.keys() == ["b", "c"]
        assert cache.get("a") is None
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LruDict(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache

    def test_setdefault_refreshes_recency(self):
        cache = LruDict(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.setdefault("a", 999)  # hit: refresh, keep original value
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert "b" not in cache

    def test_size_never_exceeds_capacity(self):
        cache = LruDict(3)
        for index in range(50):
            cache.put(index, index)
            assert len(cache) <= 3
        assert cache.evictions == 47

    def test_overwrite_is_not_an_eviction(self):
        cache = LruDict(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert cache.evictions == 0


class TestThreading:
    def test_concurrent_setdefault_single_winner(self):
        cache = LruDict(8)
        winners = []
        barrier = threading.Barrier(4)

        def worker(value):
            barrier.wait()
            winners.append(cache.setdefault("shared", value))

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(winners)) == 1

    def test_concurrent_puts_stay_bounded(self):
        cache = LruDict(4)

        def worker(base):
            for index in range(200):
                cache.put((base, index), index)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 4
