"""Unit tests for the binary instruction encoder/decoder."""

import pytest

from repro.isa.encoding import DecodeError, decode_instruction, encode_instruction
from repro.isa.instructions import AddressingMode, Instruction, Opcode, Operand


def roundtrip(instruction):
    words = encode_instruction(instruction)
    decoded, consumed = decode_instruction(words)
    assert consumed == len(words)
    return decoded


class TestFormatIEncoding:
    def test_mov_register_register(self):
        instruction = Instruction(Opcode.MOV, src=Operand.reg(4), dst=Operand.reg(5))
        words = encode_instruction(instruction)
        assert words == (0x4405,)

    def test_add_immediate_register_has_extension(self):
        instruction = Instruction(Opcode.ADD, src=Operand.imm(0x1234), dst=Operand.reg(6))
        words = encode_instruction(instruction)
        assert len(words) == 2
        assert words[1] == 0x1234

    def test_constant_generator_has_no_extension(self):
        instruction = Instruction(Opcode.ADD, src=Operand.imm(1), dst=Operand.reg(6))
        assert len(encode_instruction(instruction)) == 1

    def test_absolute_destination(self):
        instruction = Instruction(
            Opcode.MOV, src=Operand.reg(7), dst=Operand.absolute(0x0200)
        )
        words = encode_instruction(instruction)
        assert len(words) == 2
        assert words[1] == 0x0200

    def test_byte_mode_bit(self):
        word_form = Instruction(Opcode.MOV, src=Operand.reg(4), dst=Operand.reg(5))
        byte_form = Instruction(
            Opcode.MOV, src=Operand.reg(4), dst=Operand.reg(5), byte_mode=True
        )
        assert encode_instruction(byte_form)[0] == encode_instruction(word_form)[0] | 0x40


class TestFormatIIEncoding:
    def test_push_register(self):
        words = encode_instruction(Instruction(Opcode.PUSH, src=Operand.reg(10)))
        assert words == (0x120A,)

    def test_call_immediate(self):
        words = encode_instruction(Instruction(Opcode.CALL, src=Operand.imm(0xE000)))
        assert words[0] == 0x12B0
        assert words[1] == 0xE000

    def test_reti(self):
        assert encode_instruction(Instruction(Opcode.RETI)) == (0x1300,)


class TestJumpEncoding:
    def test_jmp_forward(self):
        words = encode_instruction(Instruction(Opcode.JMP, jump_offset=4))
        assert words == (0x3C02,)

    def test_jne_backward(self):
        words = encode_instruction(Instruction(Opcode.JNE, jump_offset=-6))
        decoded, _ = decode_instruction(words)
        assert decoded.opcode is Opcode.JNE
        assert decoded.jump_offset == -6

    def test_jump_offset_extremes(self):
        for offset in (-1024, 1022, 0):
            decoded = roundtrip(Instruction(Opcode.JMP, jump_offset=offset))
            assert decoded.jump_offset == offset


class TestRoundTrip:
    @pytest.mark.parametrize("opcode", [
        Opcode.MOV, Opcode.ADD, Opcode.ADDC, Opcode.SUBC, Opcode.SUB, Opcode.CMP,
        Opcode.DADD, Opcode.BIT, Opcode.BIC, Opcode.BIS, Opcode.XOR, Opcode.AND,
    ])
    def test_every_format_i_opcode(self, opcode):
        instruction = Instruction(opcode, src=Operand.reg(4), dst=Operand.reg(5))
        decoded = roundtrip(instruction)
        assert decoded.opcode is opcode

    @pytest.mark.parametrize("opcode", [
        Opcode.RRC, Opcode.SWPB, Opcode.RRA, Opcode.SXT, Opcode.PUSH, Opcode.CALL,
    ])
    def test_every_format_ii_opcode(self, opcode):
        instruction = Instruction(opcode, src=Operand.reg(9))
        decoded = roundtrip(instruction)
        assert decoded.opcode is opcode

    @pytest.mark.parametrize("opcode", [
        Opcode.JNE, Opcode.JEQ, Opcode.JNC, Opcode.JC, Opcode.JN, Opcode.JGE,
        Opcode.JL, Opcode.JMP,
    ])
    def test_every_jump_opcode(self, opcode):
        decoded = roundtrip(Instruction(opcode, jump_offset=8))
        assert decoded.opcode is opcode
        assert decoded.jump_offset == 8

    def test_indexed_source_and_destination(self):
        instruction = Instruction(
            Opcode.MOV, src=Operand.indexed(4, 10), dst=Operand.indexed(5, 20)
        )
        decoded = roundtrip(instruction)
        assert decoded.src.mode is AddressingMode.INDEXED
        assert decoded.src.value == 10
        assert decoded.dst.mode is AddressingMode.INDEXED
        assert decoded.dst.value == 20

    def test_autoincrement_source(self):
        instruction = Instruction(
            Opcode.MOV, src=Operand.indirect(1, autoincrement=True), dst=Operand.reg(0)
        )
        decoded = roundtrip(instruction)
        assert decoded.src.mode is AddressingMode.AUTOINCREMENT
        assert decoded.src.register == 1

    def test_constant_values_roundtrip(self):
        for value in (0, 1, 2, 4, 8, 0xFFFF):
            instruction = Instruction(Opcode.ADD, src=Operand.imm(value), dst=Operand.reg(6))
            decoded = roundtrip(instruction)
            assert decoded.src.mode is AddressingMode.CONSTANT
            assert decoded.src.value == value


class TestDecodeErrors:
    def test_empty_sequence(self):
        with pytest.raises(DecodeError):
            decode_instruction([])

    def test_invalid_opcode_word(self):
        with pytest.raises(DecodeError):
            decode_instruction([0x0000])

    def test_missing_extension_word(self):
        # MOV #imm, R5 requires an extension word that is not provided.
        with pytest.raises(DecodeError):
            decode_instruction([0x4035])

    def test_invalid_format_ii_opcode(self):
        with pytest.raises(DecodeError):
            decode_instruction([0x1380])
