"""Unit tests for the VCD waveform exporter."""

from repro.cpu.signals import SignalBundle
from repro.device.trace import TraceRecorder
from repro.device.vcd import VcdWriter, export_vcd
from repro.firmware.blinker import blinker_firmware
from repro.firmware.testbench import PoxTestbench, TestbenchConfig


def build_trace():
    trace = TraceRecorder()
    for index in range(5):
        bundle = SignalBundle(
            cycle=index + 1,
            pc=0xE000 + 2 * index,
            next_pc=0xE002 + 2 * index,
            irq=(index == 2),
        )
        trace.record(bundle, {"EXEC": 1 if index < 3 else 0})
    return trace


class TestVcdWriter:
    def test_header_declares_all_signals(self):
        text = VcdWriter(["EXEC", "irq", "PC"]).render(build_trace())
        assert "$timescale" in text
        assert text.count("$var wire") == 3
        assert "EXEC" in text and "irq" in text and "PC" in text

    def test_binary_signals_are_one_bit(self):
        text = VcdWriter(["EXEC", "irq"]).render(build_trace())
        assert "$var wire 1" in text
        assert "$var wire 16" not in text

    def test_pc_is_sixteen_bit_vector(self):
        text = VcdWriter(["PC"]).render(build_trace())
        assert "$var wire 16" in text
        assert "b1110000000000000 " in text  # 0xE000

    def test_only_changes_are_emitted(self):
        text = VcdWriter(["EXEC"]).render(build_trace())
        # EXEC changes exactly once (1 -> 0), so there is one timestamped change.
        change_lines = [line for line in text.splitlines() if line.startswith("#")]
        assert len(change_lines) == 2  # the change plus the final timestamp

    def test_export_to_file(self, tmp_path):
        path = tmp_path / "trace.vcd"
        returned = export_vcd(build_trace(), str(path), signals=["EXEC", "PC"])
        assert returned == str(path)
        content = path.read_text()
        assert content.startswith("$date")
        assert content.endswith("\n")

    def test_wrapped_trace_timestamps_offset_by_dropped(self):
        # A ring-buffered trace that wrapped has discarded its oldest
        # entries; the VCD window must start at the first *surviving*
        # step, not rebase to #0 with a final timestamp capped at the
        # buffer length.
        trace = TraceRecorder(max_entries=4)
        for index in range(10):
            pc = 0xE000 if index < 8 else 0xF000
            trace.record(SignalBundle(cycle=index + 1, pc=pc, next_pc=pc + 2))
        assert trace.dropped == 6  # entries 0..5 are gone
        text = VcdWriter(["PC"]).render(trace)
        lines = text.splitlines()
        stamps = [int(line[1:]) for line in lines if line.startswith("#")]
        # Window start (before $dumpvars), the PC change at surviving
        # index 2 (global step 8), and the end-of-dump timestamp.
        assert stamps == [6, 8, 10]
        assert lines.index("#6") < lines.index("$dumpvars")

    def test_empty_trace_emits_wellformed_vcd(self):
        text = VcdWriter(["EXEC", "PC"]).render(TraceRecorder())
        # The $dumpvars block must still be terminated.
        lines = text.splitlines()
        assert "$dumpvars" in lines
        assert lines.index("$end", lines.index("$dumpvars")) > 0
        assert lines[-1] == "#1"

    def test_unwrapped_trace_still_starts_at_zero(self):
        text = VcdWriter(["PC"]).render(build_trace())
        assert "#0\n$dumpvars" not in text  # no spurious leading stamp
        lines = text.splitlines()
        stamps = [int(line[1:]) for line in lines if line.startswith("#")]
        assert stamps[-1] == 5  # one timestamp per change, capped at len

    def test_wrapped_real_device_trace_exports(self, tmp_path):
        from repro.device.mcu import Device, DeviceConfig
        from repro.isa.assembler import Assembler

        device = Device(DeviceConfig(trace_limit=16))
        image = Assembler().assemble(
            ".section .text\nMOV #0x5A80, &0x0120\nloop:\nNOP\nJMP loop\n",
            section_addresses={".text": 0xE000},
        )
        image.write_to(device.memory)
        device.ivt.set_reset_vector(0xE000)
        device.reset()
        device.run_steps(100)
        assert device.trace.dropped == 84
        path = tmp_path / "wrapped.vcd"
        export_vcd(device.trace, str(path), signals=["PC"])
        text = path.read_text()
        stamps = [int(line[1:]) for line in text.splitlines()
                  if line.startswith("#")]
        assert stamps[0] == 84  # window starts where the ring begins
        assert stamps[-1] == 100  # and ends at the true step count

    def test_export_real_scenario(self, tmp_path):
        bench = PoxTestbench(blinker_firmware(authorized=True), TestbenchConfig())
        bench.run_pox(setup=lambda d: d.schedule_button_press(6))
        path = tmp_path / "fig5a.vcd"
        export_vcd(bench.device.trace, str(path), signals=["EXEC", "irq", "PC"])
        text = path.read_text()
        assert "$enddefinitions" in text
        # The interrupt shows up as a rising edge of irq somewhere.
        assert "\n1" in text
