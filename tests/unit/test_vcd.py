"""Unit tests for the VCD waveform exporter."""

from repro.cpu.signals import SignalBundle
from repro.device.trace import TraceRecorder
from repro.device.vcd import VcdWriter, export_vcd
from repro.firmware.blinker import blinker_firmware
from repro.firmware.testbench import PoxTestbench, TestbenchConfig


def build_trace():
    trace = TraceRecorder()
    for index in range(5):
        bundle = SignalBundle(
            cycle=index + 1,
            pc=0xE000 + 2 * index,
            next_pc=0xE002 + 2 * index,
            irq=(index == 2),
        )
        trace.record(bundle, {"EXEC": 1 if index < 3 else 0})
    return trace


class TestVcdWriter:
    def test_header_declares_all_signals(self):
        text = VcdWriter(["EXEC", "irq", "PC"]).render(build_trace())
        assert "$timescale" in text
        assert text.count("$var wire") == 3
        assert "EXEC" in text and "irq" in text and "PC" in text

    def test_binary_signals_are_one_bit(self):
        text = VcdWriter(["EXEC", "irq"]).render(build_trace())
        assert "$var wire 1" in text
        assert "$var wire 16" not in text

    def test_pc_is_sixteen_bit_vector(self):
        text = VcdWriter(["PC"]).render(build_trace())
        assert "$var wire 16" in text
        assert "b1110000000000000 " in text  # 0xE000

    def test_only_changes_are_emitted(self):
        text = VcdWriter(["EXEC"]).render(build_trace())
        # EXEC changes exactly once (1 -> 0), so there is one timestamped change.
        change_lines = [line for line in text.splitlines() if line.startswith("#")]
        assert len(change_lines) == 2  # the change plus the final timestamp

    def test_export_to_file(self, tmp_path):
        path = tmp_path / "trace.vcd"
        returned = export_vcd(build_trace(), str(path), signals=["EXEC", "PC"])
        assert returned == str(path)
        content = path.read_text()
        assert content.startswith("$date")
        assert content.endswith("\n")

    def test_export_real_scenario(self, tmp_path):
        bench = PoxTestbench(blinker_firmware(authorized=True), TestbenchConfig())
        bench.run_pox(setup=lambda d: d.schedule_button_press(6))
        path = tmp_path / "fig5a.vcd"
        export_vcd(bench.device.trace, str(path), signals=["EXEC", "irq", "PC"])
        text = path.read_text()
        assert "$enddefinitions" in text
        # The interrupt shows up as a rising edge of irq somewhere.
        assert "\n1" in text
