"""Unit tests for the fleet service's message transports."""

import asyncio
import socket
import threading

import pytest

from repro.net.transport import (
    ClosedTransportError,
    LinkConditions,
    loopback_pair,
    open_tcp_listener,
    open_tcp_transport,
    read_frame,
    write_frame,
)


def run(coroutine):
    return asyncio.run(coroutine)


class CustomPayload:
    """Module-level (picklable) payload type for the allowlist test."""

    def __eq__(self, other):
        return type(other) is type(self)


class TestLinkConditions:
    def test_defaults_are_unimpaired(self):
        assert not LinkConditions().impaired

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            LinkConditions(loss=1.5)
        with pytest.raises(ValueError):
            LinkConditions(reorder=-0.1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LinkConditions(delay=-1.0)


class TestLoopbackTransport:
    def test_roundtrip_preserves_order(self):
        async def body():
            left, right = loopback_pair()
            for index in range(5):
                await left.send({"n": index})
            return [await right.recv() for _ in range(5)]

        assert run(body()) == [{"n": index} for index in range(5)]

    def test_bidirectional(self):
        async def body():
            left, right = loopback_pair()
            await left.send("ping")
            assert await right.recv() == "ping"
            await right.send("pong")
            return await left.recv()

        assert run(body()) == "pong"

    def test_close_unblocks_peer_recv(self):
        async def body():
            left, right = loopback_pair()
            await left.close()
            with pytest.raises(ClosedTransportError):
                await right.recv()

        run(body())

    def test_send_after_peer_close_raises(self):
        async def body():
            left, right = loopback_pair()
            await right.close()
            with pytest.raises(ClosedTransportError):
                await left.send("into the void")

        run(body())

    def test_total_loss_drops_every_message(self):
        async def body():
            left, right = loopback_pair(LinkConditions(loss=1.0))
            await left.send("dropped")
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(right.recv(), timeout=0.05)

        run(body())

    def test_partial_loss_is_deterministic_per_seed(self):
        def survivors(seed):
            async def body():
                left, right = loopback_pair(LinkConditions(loss=0.5, seed=seed))
                for index in range(20):
                    await left.send(index)
                received = []
                while True:
                    try:
                        received.append(
                            await asyncio.wait_for(right.recv(), timeout=0.05))
                    except asyncio.TimeoutError:
                        return received

            return run(body())

        first = survivors(seed=7)
        assert first == survivors(seed=7)  # deterministic
        assert 0 < len(first) < 20  # actually lossy, not all-or-nothing

    def test_latency_delays_but_delivers(self):
        async def body():
            left, right = loopback_pair(LinkConditions(delay=0.02))
            await left.send("late")
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(right.recv(), timeout=0.001)
            return await asyncio.wait_for(right.recv(), timeout=1.0)

        assert run(body()) == "late"

    def test_reorder_swaps_adjacent_messages(self):
        # With reorder=1.0 every message is held behind its successor,
        # so a pair (a, b) arrives as (b, a).
        async def body():
            left, right = loopback_pair(LinkConditions(reorder=1.0))
            await left.send("a")
            await left.send("b")
            return [await right.recv(), await right.recv()]

        assert run(body()) == ["b", "a"]


class TestRestrictedDecoding:
    def test_hostile_pickle_frame_rejected(self):
        # A frame whose pickle references os.system must be refused at
        # find_class time, not executed.
        import pickle

        from repro.net.transport import decode_payload

        class Exploit:
            def __reduce__(self):
                import os
                return (os.system, ("true",))

        hostile = pickle.dumps(Exploit())
        with pytest.raises(pickle.UnpicklingError, match="disallowed"):
            decode_payload(hostile)

    def test_repro_function_gadget_rejected(self):
        # A blanket repro.* allowance would make every function in the
        # package a REDUCE gadget (e.g. repro.experiments.runners.
        # write_json writing attacker-chosen files).  Only the known
        # payload *classes* may resolve.
        import pickle

        from repro.experiments.runners import write_json
        from repro.net.transport import decode_payload

        hostile = pickle.dumps(write_json)  # a frame naming a repro function
        with pytest.raises(pickle.UnpicklingError, match="disallowed"):
            decode_payload(hostile)

    def test_repro_dataclasses_roundtrip(self):
        from repro.net.transport import decode_payload, encode_frame
        from repro.sim import FirmwareRef, ScenarioSpec
        from repro.vrased.swatt import AttestationReport

        spec = ScenarioSpec(name="ok", firmware=FirmwareRef.of("blinker"))
        report = AttestationReport(device_id="d", challenge=b"\x01" * 32,
                                   measurement=b"\x02" * 32,
                                   claims={"EXEC": 1}, snapshots={"OR": b"\x03"})
        message = {"kind": "report", "spec": spec, "report": report, "n": 7}
        decoded = decode_payload(encode_frame(message)[4:])
        assert decoded == {"kind": "report", "spec": spec, "report": report,
                           "n": 7}

    def test_allow_frame_type_extends_the_allowlist(self):
        import pickle

        from repro.net.transport import allow_frame_type, decode_payload

        frame = pickle.dumps(CustomPayload())
        with pytest.raises(pickle.UnpicklingError, match="allow_frame_type"):
            decode_payload(frame)
        allow_frame_type(CustomPayload)
        assert decode_payload(frame) == CustomPayload()

    def test_importing_repro_does_not_import_the_net_stack(self):
        # The service layer is an explicit opt-in; `import repro` (what
        # every spawn-context pool worker executes) must not pay for it.
        import subprocess
        import sys

        code = ("import repro, sys; "
                "sys.exit(1 if 'repro.net' in sys.modules else 0)")
        result = subprocess.run([sys.executable, "-c", code])
        assert result.returncode == 0
        # ...while the lazy re-export still resolves.
        code = ("from repro import Fleet; "
                "import sys; sys.exit(0 if Fleet.__name__ == 'Fleet' else 1)")
        result = subprocess.run([sys.executable, "-c", code])
        assert result.returncode == 0


class TestTcpTransport:
    def test_roundtrip_over_real_sockets(self):
        async def body():
            echoes = []

            async def handler(transport):
                while True:
                    try:
                        message = await transport.recv()
                    except ClosedTransportError:
                        return
                    echoes.append(message)
                    await transport.send({"echo": message})

            server = await open_tcp_listener(handler)
            host, port = server.sockets[0].getsockname()[:2]
            client = await open_tcp_transport(host, port)
            await client.send({"payload": b"\x00\xFF" * 100, "n": 1})
            reply = await client.recv()
            await client.close()
            server.close()
            await server.wait_closed()
            return echoes, reply

        echoes, reply = run(body())
        assert echoes == [{"payload": b"\x00\xFF" * 100, "n": 1}]
        assert reply == {"echo": {"payload": b"\x00\xFF" * 100, "n": 1}}

    def test_peer_close_raises_on_recv(self):
        async def body():
            async def handler(transport):
                return  # close immediately

            server = await open_tcp_listener(handler)
            host, port = server.sockets[0].getsockname()[:2]
            client = await open_tcp_transport(host, port)
            with pytest.raises(ClosedTransportError):
                await client.recv()
            await client.close()
            server.close()
            await server.wait_closed()

        run(body())

    def test_recv_cancelled_mid_frame_does_not_desync_stream(self):
        # A deadline cancellation landing between the header read and
        # the payload read (frame split across TCP segments) must cost
        # only that recv: the next one resumes with the payload, it
        # must not parse payload bytes as a fresh length header.
        from repro.net.transport import encode_frame

        async def body():
            frame = encode_frame({"late": True})

            async def on_connect(reader, writer):
                writer.write(frame[:4])  # header only
                await writer.drain()
                await asyncio.sleep(0.1)
                writer.write(frame[4:])  # payload, then a second frame
                writer.write(encode_frame({"next": 2}))
                await writer.drain()
                await asyncio.sleep(0.3)
                writer.close()

            server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            client = await open_tcp_transport(host, port)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(client.recv(), timeout=0.02)
            first = await client.recv()
            second = await client.recv()
            await client.close()
            server.close()
            await server.wait_closed()
            return first, second

        assert run(body()) == ({"late": True}, {"next": 2})

    def test_sync_frames_interoperate_with_asyncio_service(self):
        # A plain blocking-socket client (the remote campaign worker's
        # habitat) must speak the same framing as StreamTransport.
        async def body():
            async def handler(transport):
                message = await transport.recv()
                await transport.send({"seen": message})

            server = await open_tcp_listener(handler)
            host, port = server.sockets[0].getsockname()[:2]
            outcome = {}

            def sync_client():
                sock = socket.create_connection((host, port))
                try:
                    write_frame(sock, {"kind": "hello", "blob": b"x" * 4096})
                    outcome["reply"] = read_frame(sock)
                finally:
                    sock.close()

            thread = threading.Thread(target=sync_client)
            thread.start()
            while thread.is_alive():
                await asyncio.sleep(0.01)
            thread.join()
            server.close()
            await server.wait_closed()
            return outcome

        outcome = run(body())
        assert outcome["reply"] == {"seen": {"kind": "hello", "blob": b"x" * 4096}}
