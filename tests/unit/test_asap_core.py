"""Unit tests for the ASAP core: IVT guard, monitor, linker and verifier."""

import pytest

from repro.apex.regions import MetadataRegion, OutputRegion, PoxConfig
from repro.core.hwmod import AsapMonitor
from repro.core.ivt_guard import IvtGuard, IvtGuardState
from repro.core.linker import ErLinker, LinkError
from repro.core.pox import AsapPoxVerifier, IVT_SNAPSHOT
from repro.cpu.signals import MemoryWrite, SignalBundle
from repro.memory.ivt import IVT_BASE, IVT_END
from repro.memory.layout import MemoryRegion
from repro.peripherals.registers import InterruptVectors
from repro.vrased.swatt import AttestationReport


ER_MIN = 0xE000
ER_MAX = 0xE07E
IVT_REGION = MemoryRegion(IVT_BASE, IVT_END, "ivt")


def bundle(pc, next_pc=None, irq=False, writes=(), dma_writes=(), cycle=1):
    return SignalBundle(
        cycle=cycle,
        pc=pc,
        next_pc=pc + 2 if next_pc is None else next_pc,
        irq=irq,
        dma_en=bool(dma_writes),
        writes=[MemoryWrite(address, 0, 2) for address in writes],
        dma_writes=[MemoryWrite(address, 0, 2) for address in dma_writes],
    )


@pytest.fixture
def asap_monitor(pox_config):
    return AsapMonitor(pox_config)


class TestIvtGuard:
    @pytest.fixture
    def guard(self):
        return IvtGuard(IVT_REGION, ER_MIN)

    def test_initial_state_is_run(self, guard):
        assert guard.state is IvtGuardState.RUN
        assert guard.exec_allowed

    def test_cpu_write_to_ivt_trips_guard(self, guard):
        guard.observe(bundle(0xC000, writes=[IVT_BASE + 4]))
        assert guard.state is IvtGuardState.NOT_EXEC
        assert guard.tripped
        assert guard.events[0].initiator == "cpu"

    def test_dma_write_to_ivt_trips_guard(self, guard):
        guard.observe(bundle(0xC000, dma_writes=[IVT_BASE]))
        assert guard.state is IvtGuardState.NOT_EXEC
        assert guard.events[0].initiator == "dma"

    def test_write_outside_ivt_is_ignored(self, guard):
        guard.observe(bundle(0xC000, writes=[0x0600]))
        assert guard.state is IvtGuardState.RUN

    def test_recovery_only_at_er_min(self, guard):
        guard.observe(bundle(0xC000, writes=[IVT_BASE]))
        guard.observe(bundle(0xC002))
        assert guard.state is IvtGuardState.NOT_EXEC
        guard.observe(bundle(ER_MIN))
        assert guard.state is IvtGuardState.RUN

    def test_simultaneous_write_and_ermin_stays_tripped(self, guard):
        guard.observe(bundle(0xC000, writes=[IVT_BASE]))
        guard.observe(bundle(ER_MIN, writes=[IVT_BASE + 2]))
        assert guard.state is IvtGuardState.NOT_EXEC

    def test_reset(self, guard):
        guard.observe(bundle(0xC000, writes=[IVT_BASE]))
        guard.reset()
        assert guard.state is IvtGuardState.RUN
        assert not guard.tripped

    def test_transition_relation_matches_fig3(self):
        next_state = IvtGuard.transition_relation()
        run, not_exec = IvtGuardState.RUN, IvtGuardState.NOT_EXEC
        assert next_state(run, {"ivt_write": True}) is not_exec
        assert next_state(run, {"ivt_write": False}) is run
        assert next_state(not_exec, {"ivt_write": False, "pc_at_ermin": True}) is run
        assert next_state(not_exec, {"ivt_write": False, "pc_at_ermin": False}) is not_exec
        assert next_state(not_exec, {"ivt_write": True, "pc_at_ermin": True}) is not_exec

    def test_output_function(self):
        assert IvtGuard.output_exec(IvtGuardState.RUN)
        assert not IvtGuard.output_exec(IvtGuardState.NOT_EXEC)


class TestAsapMonitor:
    def test_authorized_interrupt_keeps_exec(self, asap_monitor, pox_config):
        isr = pox_config.executable.region.start + 0x20
        asap_monitor.observe(bundle(ER_MIN))
        asap_monitor.observe(bundle(ER_MIN + 4, next_pc=isr, irq=True))
        asap_monitor.observe(bundle(isr))
        assert asap_monitor.exec_flag
        assert not asap_monitor.violated

    def test_unauthorized_interrupt_clears_exec(self, asap_monitor):
        outside_isr = 0xC100
        asap_monitor.observe(bundle(ER_MIN))
        asap_monitor.observe(bundle(ER_MIN + 4, next_pc=outside_isr, irq=True))
        assert not asap_monitor.exec_flag
        assert asap_monitor.violations_for("ltl1-exit")

    def test_no_ltl3_rule_exists(self, asap_monitor):
        asap_monitor.observe(bundle(ER_MIN))
        asap_monitor.observe(bundle(ER_MIN + 4, next_pc=ER_MIN + 6, irq=True))
        assert asap_monitor.exec_flag
        assert not asap_monitor.violations_for("ltl3-interrupt")

    def test_ap1_cpu_write_to_ivt_clears_exec(self, asap_monitor):
        asap_monitor.observe(bundle(ER_MIN))
        asap_monitor.observe(bundle(ER_MIN + 4, writes=[IVT_BASE + 4]))
        assert not asap_monitor.exec_flag
        assert asap_monitor.violations_for("ap1-ivt-modified")
        assert not asap_monitor.ivt_guard.exec_allowed

    def test_ap1_dma_write_to_ivt_clears_exec(self, asap_monitor):
        asap_monitor.observe(bundle(ER_MIN))
        asap_monitor.observe(bundle(0xC000, dma_writes=[IVT_BASE]))
        assert asap_monitor.violations_for("ap1-ivt-modified")

    def test_guard_signal_exported(self, asap_monitor):
        values = asap_monitor.signal_values()
        assert values["IVT_GUARD_OK"] == 1
        asap_monitor.observe(bundle(0xC000, writes=[IVT_BASE]))
        assert asap_monitor.signal_values()["IVT_GUARD_OK"] == 0

    def test_reset_clears_guard(self, asap_monitor):
        asap_monitor.observe(bundle(0xC000, writes=[IVT_BASE]))
        asap_monitor.reset()
        assert asap_monitor.ivt_guard.exec_allowed
        assert not asap_monitor.violated

    def test_memory_rules_inherited_from_apex(self, asap_monitor, pox_config):
        asap_monitor.observe(bundle(ER_MIN))
        asap_monitor.observe(bundle(0xC000, writes=[pox_config.executable.region.start]))
        assert asap_monitor.violations_for("er-modified")


LINKER_SOURCE = """
    .section exec.start
ER_entry:
    EINT
    CALL #work
    DINT
    BR #ER_exit

    .section exec.body
work:
    MOV #0, R6
    RET
trusted_isr:
    INC R10
    RETI

    .section exec.leave
ER_exit:
    RET

    .section .text
main:
    NOP
    JMP main
untrusted_isr:
    RETI
"""


class TestErLinker:
    def link(self, **kwargs):
        linker = ErLinker(er_base=0xE000)
        defaults = dict(
            trusted_isrs={InterruptVectors.PORT1: "trusted_isr"},
            untrusted_isrs={InterruptVectors.PORT5: "untrusted_isr"},
            reset_symbol="main",
        )
        defaults.update(kwargs)
        return linker.link(LINKER_SOURCE, **defaults)

    def test_er_sections_are_contiguous_from_base(self):
        firmware = self.link()
        assert firmware.executable.region.start == 0xE000
        assert firmware.executable.er_min == firmware.symbol("ER_entry")
        assert firmware.executable.er_max == firmware.symbol("ER_exit")

    def test_trusted_isr_inside_er(self):
        firmware = self.link()
        isr_address = firmware.symbol("trusted_isr")
        assert firmware.executable.contains(isr_address)
        assert firmware.executable.isr_entries[InterruptVectors.PORT1] == isr_address

    def test_untrusted_isr_outside_er(self):
        firmware = self.link()
        assert not firmware.executable.contains(firmware.symbol("untrusted_isr"))
        assert len(firmware.untrusted_isrs()) == 1
        assert len(firmware.trusted_isrs()) == 1

    def test_ivt_vectors_programmed_on_load(self, device):
        firmware = self.link()
        firmware.load_into(device)
        assert device.ivt.get_vector(InterruptVectors.PORT1) == firmware.symbol("trusted_isr")
        assert device.ivt.get_vector(InterruptVectors.PORT5) == firmware.symbol("untrusted_isr")
        assert device.ivt.get_reset_vector() == firmware.symbol("main")

    def test_trusted_isr_outside_er_rejected(self):
        with pytest.raises(LinkError):
            self.link(trusted_isrs={InterruptVectors.PORT1: "untrusted_isr"})

    def test_untrusted_isr_inside_er_rejected(self):
        with pytest.raises(LinkError):
            self.link(untrusted_isrs={InterruptVectors.PORT5: "trusted_isr"})

    def test_undefined_isr_symbol_rejected(self):
        with pytest.raises(LinkError):
            self.link(trusted_isrs={InterruptVectors.PORT1: "missing_isr"})

    def test_undefined_reset_symbol_rejected(self):
        with pytest.raises(LinkError):
            self.link(reset_symbol="nowhere")

    def test_same_index_trusted_and_untrusted_rejected(self):
        with pytest.raises(LinkError):
            self.link(
                trusted_isrs={InterruptVectors.PORT1: "trusted_isr"},
                untrusted_isrs={InterruptVectors.PORT1: "untrusted_isr"},
            )

    def test_source_without_er_sections_rejected(self):
        linker = ErLinker(er_base=0xE000)
        with pytest.raises(LinkError):
            linker.link(".section .text\nNOP\n")

    def test_er_base_outside_program_memory_rejected(self):
        with pytest.raises(LinkError):
            ErLinker(er_base=0x0300)

    def test_er_bytes_roundtrip(self, device):
        firmware = self.link()
        firmware.load_into(device)
        er_bytes = firmware.er_bytes(device.memory)
        assert len(er_bytes) == firmware.executable.region.size


class TestAsapPoxVerifierPolicy:
    def make_verifier(self, pox_config, expected_isrs):
        verifier = AsapPoxVerifier()
        verifier.enroll("dev")
        verifier.register_asap_deployment(
            "dev", pox_config, b"\x00" * pox_config.executable.region.size,
            expected_isrs,
        )
        return verifier

    def ivt_snapshot(self, entries):
        data = bytearray(32)
        for index, address in entries.items():
            data[2 * index] = address & 0xFF
            data[2 * index + 1] = (address >> 8) & 0xFF
        return bytes(data)

    def test_policy_check_flags_unexpected_er_entry(self, pox_config):
        verifier = self.make_verifier(pox_config, {2: 0xE020})
        reference = verifier.reference("dev")
        report = AttestationReport(
            device_id="dev", challenge=b"\x00" * 32, measurement=b"\x00" * 32,
            claims={"EXEC": 1},
            snapshots={IVT_SNAPSHOT: self.ivt_snapshot({2: 0xE020, 4: 0xE004})},
        )
        error = verifier._post_measurement_checks("dev", report, reference)
        assert error is not None and "IVT entry 4" in error

    def test_policy_check_accepts_expected_entries(self, pox_config):
        verifier = self.make_verifier(pox_config, {2: 0xE020})
        reference = verifier.reference("dev")
        report = AttestationReport(
            device_id="dev", challenge=b"\x00" * 32, measurement=b"\x00" * 32,
            claims={"EXEC": 1},
            snapshots={IVT_SNAPSHOT: self.ivt_snapshot({2: 0xE020, 9: 0xA400})},
        )
        assert verifier._post_measurement_checks("dev", report, reference) is None

    def test_policy_check_flags_swapped_handler(self, pox_config):
        verifier = self.make_verifier(pox_config, {2: 0xE020, 9: 0xE030})
        reference = verifier.reference("dev")
        report = AttestationReport(
            device_id="dev", challenge=b"\x00" * 32, measurement=b"\x00" * 32,
            claims={"EXEC": 1},
            snapshots={IVT_SNAPSHOT: self.ivt_snapshot({2: 0xE030, 9: 0xE020})},
        )
        error = verifier._post_measurement_checks("dev", report, reference)
        assert error is not None and "intended handler" in error

    def test_policy_check_requires_snapshot(self, pox_config):
        verifier = self.make_verifier(pox_config, {2: 0xE020})
        reference = verifier.reference("dev")
        report = AttestationReport(
            device_id="dev", challenge=b"\x00" * 32, measurement=b"\x00" * 32,
            claims={"EXEC": 1}, snapshots={},
        )
        error = verifier._post_measurement_checks("dev", report, reference)
        assert error is not None and "IVT" in error


class TestShiftedIvtRegion:
    """A non-default (partial) ``ivt_region`` must attribute handlers to
    the interrupt sources that actually vector through it."""

    #: Covers sources 4..15 only (the table's last 24 bytes).
    SHIFTED = MemoryRegion(IVT_BASE + 8, IVT_END, "ivt-tail")

    def make_verifier(self, pox_config, expected_isrs):
        verifier = AsapPoxVerifier()
        verifier.enroll("dev")
        verifier.register_asap_deployment(
            "dev", pox_config, b"\x00" * pox_config.executable.region.size,
            expected_isrs, ivt_region=self.SHIFTED,
        )
        return verifier

    def shifted_snapshot(self, entries):
        """Snapshot of the shifted region; *entries* keyed by source index."""
        data = bytearray(self.SHIFTED.size)
        for index, address in entries.items():
            offset = 2 * index - (self.SHIFTED.start - IVT_BASE)
            assert 0 <= offset < len(data), "source %d outside the region" % index
            data[offset] = address & 0xFF
            data[offset + 1] = (address >> 8) & 0xFF
        return bytes(data)

    def test_entries_decode_from_region_offset(self):
        from repro.core.pox import _ivt_entries_from_bytes

        snapshot = self.shifted_snapshot({4: 0xE020, 6: 0xE030})
        entries = _ivt_entries_from_bytes(snapshot, self.SHIFTED.start)
        assert entries[4] == 0xE020 and entries[6] == 0xE030
        assert min(entries) == 4  # indexed from the region's offset, not 0

    def test_correct_entries_accepted_through_shifted_region(self, pox_config):
        verifier = self.make_verifier(pox_config, {4: 0xE020, 6: 0xE030})
        reference = verifier.reference("dev")
        report = AttestationReport(
            device_id="dev", challenge=b"\x00" * 32, measurement=b"\x00" * 32,
            claims={"EXEC": 1},
            snapshots={IVT_SNAPSHOT: self.shifted_snapshot(
                {4: 0xE020, 6: 0xE030})},
        )
        assert verifier._post_measurement_checks("dev", report, reference) is None

    def test_swapped_handlers_flagged_through_shifted_region(self, pox_config):
        # Sources 4 and 6 have their intended handlers swapped.  Before
        # the fix the decoder labelled them sources 0 and 2 (which have
        # no expectations), so the per-source handler check silently
        # passed and the ISR-entry policy was applied to the wrong
        # interrupt sources.
        verifier = self.make_verifier(pox_config, {4: 0xE020, 6: 0xE030})
        reference = verifier.reference("dev")
        report = AttestationReport(
            device_id="dev", challenge=b"\x00" * 32, measurement=b"\x00" * 32,
            claims={"EXEC": 1},
            snapshots={IVT_SNAPSHOT: self.shifted_snapshot(
                {4: 0xE030, 6: 0xE020})},
        )
        error = verifier._post_measurement_checks("dev", report, reference)
        assert error is not None and "intended handler" in error
        assert "IVT entry 4" in error
