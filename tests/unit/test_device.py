"""Unit tests for the device composition and trace recording."""

from repro.device.mcu import Device, DeviceConfig
from repro.device.trace import TraceRecorder, Waveform
from repro.cpu.signals import SignalBundle
from repro.isa.assembler import Assembler
from repro.peripherals.registers import InterruptVectors, PeripheralRegisters


def load_program(device, source, base=0xE000, reset=True):
    image = Assembler().assemble(
        ".section .text\n" + source, section_addresses={".text": base}
    )
    image.write_to(device.memory)
    device.ivt.set_reset_vector(base)
    if reset:
        device.reset()
    return image


class TestDeviceBasics:
    def test_reset_loads_pc_from_reset_vector(self, device):
        load_program(device, "NOP\n")
        assert device.cpu.pc == 0xE000

    def test_stack_pointer_initialised(self, device):
        load_program(device, "NOP\n")
        assert device.cpu.sp == (device.layout.data.end + 1) & 0xFFFE

    def test_step_advances_cpu(self, device):
        load_program(device, "MOV #5, R6\nNOP\n")
        device.step()
        assert device.cpu.registers[6] == 5

    def test_run_until_pc(self, device):
        load_program(device, "MOV #5, R6\nMOV #6, R7\ndone:\nJMP done\n")
        reached = device.run_until_pc(0xE000 + 8, max_steps=50)
        assert reached
        assert device.cpu.registers[7] == 6

    def test_run_until_pc_returns_false_on_crash(self, device):
        # Firmware jumps through an unprogrammed interrupt vector: the
        # device crashes long before the target PC.  The early break of
        # the run loop must not be reported as success.
        load_program(device, "MOV &0xFFE4, PC\n")  # vector 2 is 0x0000
        reached = device.run_until_pc(0xE000 + 0x40, max_steps=100)
        assert device.crashed
        assert reached is False

    def test_run_until_pc_true_when_reached_on_final_step(self, device):
        # The stop condition fires on the max_steps-th step: that is
        # still success, even though the step budget is exhausted.
        load_program(device, "start:\nNOP\ndone:\nJMP done\n")
        assert device.run_until_pc(0xE000, max_steps=1) is True

    def test_run_until_pc_true_when_crash_at_target(self, device):
        # The crash happens at the target address itself: the PC did
        # reach it, even though the instruction there was illegal.
        load_program(device, "MOV &0xFFE4, PC\n")
        device.run_steps(2)
        assert device.crashed
        assert device.run_until_pc(device.cpu.pc, max_steps=10) is True

    def test_run_with_stop_condition(self, device):
        load_program(device, "loop:\nINC R6\nJMP loop\n")
        steps = device.run(
            max_steps=100,
            stop_condition=lambda bundle, dev: dev.cpu.registers[6] >= 5,
        )
        assert steps < 100
        assert device.cpu.registers[6] == 5

    def test_total_cycles_accumulate(self, device):
        load_program(device, "NOP\nNOP\nNOP\ndone:\nJMP done\n")
        device.run_steps(3)
        assert device.total_cycles >= 3

    def test_crash_is_latched_not_raised(self, device):
        # Reset vector points at zeroed memory -> illegal instruction.
        device.ivt.set_reset_vector(0xC000)
        device.reset()
        device.run_steps(3)
        assert device.crashed
        assert "illegal instruction" in device.crash_reason

    def test_scheduled_event_fires(self, device):
        load_program(device, "loop:\nNOP\nJMP loop\n")
        fired = []
        device.schedule(3, lambda dev: fired.append(dev.step_number))
        device.run_steps(5)
        assert fired == [3]

    def test_monitor_receives_bundles(self, device):
        load_program(device, "NOP\nNOP\ndone:\nJMP done\n")

        class Recorder:
            def __init__(self):
                self.bundles = []

            def observe(self, bundle):
                self.bundles.append(bundle)

        recorder = device.attach_monitor(Recorder())
        device.run_steps(4)
        assert len(recorder.bundles) == 4

    def test_write_word_as_cpu_notifies_monitors(self, device):
        load_program(device, "NOP\n")

        class Recorder:
            def __init__(self):
                self.writes = []

            def observe(self, bundle):
                self.writes.extend(bundle.write_addresses)

        recorder = device.attach_monitor(Recorder())
        device.write_word_as_cpu(0x0600, 0x1234)
        assert 0x0600 in recorder.writes
        assert device.memory.peek_word(0x0600) == 0x1234


class TestDeviceInterruptsEndToEnd:
    def test_gpio_interrupt_dispatches_to_ivt_handler(self, device):
        source = (
            "EINT\n"
            "loop:\n"
            "NOP\n"
            "JMP loop\n"
            "isr:\n"
            "MOV #1, R10\n"
            "RETI\n"
        )
        image = load_program(device, source)
        device.ivt.set_vector(InterruptVectors.PORT1, image.symbol("isr"))
        device.memory.load_bytes(PeripheralRegisters.P1IE, bytes([0x01]))
        device.schedule_button_press(3)
        device.run_steps(12)
        assert device.cpu.registers[10] == 1
        assert device.interrupt_controller.serviced[InterruptVectors.PORT1] == 1

    def test_uart_rx_event_scheduling(self, device):
        load_program(device, "loop:\nNOP\nJMP loop\n")
        device.schedule_uart_rx(2, b"\x7E")
        device.run_steps(6)
        assert device.memory.peek_byte(PeripheralRegisters.URXBUF) == 0x7E

    def test_reset_clears_injected_interrupts(self, device):
        # A stale spoofed IRQ (sticky included) must not survive reset:
        # before the fix, a scenario reset would immediately re-service
        # the injected request.
        load_program(device, "EINT\nloop:\nNOP\nJMP loop\n")
        controller = device.interrupt_controller
        controller.inject(5, sticky=True, label="spoofed")
        device.run_steps(3)
        assert controller.serviced.get(5)
        device.reset()
        assert controller.highest_pending() is None
        assert controller.serviced == {}
        device.run_steps(5)
        assert controller.serviced.get(5) is None

    def test_interrupt_controller_reset_direct(self):
        from repro.peripherals.interrupt_controller import InterruptController

        controller = InterruptController()
        controller.inject(4, sticky=True)
        controller.acknowledge(4)
        assert controller.highest_pending() == 4  # sticky survives service
        controller.reset()
        assert controller.highest_pending() is None
        assert controller.total_serviced() == 0


class TestWatchdogExpiryResetsDevice:
    def arm(self, device, interval):
        """Shrink the watchdog interval so tests expire it quickly."""
        device.watchdog.interval = interval
        device.watchdog.kick()

    def test_expiry_performs_warm_reset(self, device):
        # Firmware that never stops (or services) the watchdog: after
        # the interval elapses the device must restart from the reset
        # vector, not silently keep running -- before the fix,
        # ``Watchdog.expired`` had no reader and expiry was a no-op.
        load_program(device, "loop:\nINC R6\nJMP loop\n")
        self.arm(device, 40)
        device.run_steps(60)
        assert device.watchdog_resets >= 1
        assert not device.crashed
        # The warm reset rewound execution: R6 was cleared and counted
        # up again from the reset vector, so it is far below the total
        # number of INC steps executed.
        assert 0 < device.cpu.registers[6] < 30

    def test_expiry_with_unprogrammed_reset_vector_crashes(self, device):
        load_program(device, "loop:\nNOP\nJMP loop\n")
        device.ivt.set_reset_vector(0x0000)  # e.g. flash corruption
        self.arm(device, 40)
        device.run_steps(80)
        assert device.watchdog_resets == 1
        assert device.crashed  # the reset path latched the crash

    def test_held_watchdog_never_resets_device(self, device):
        load_program(device,
                     "MOV #0x5A80, &0x0120\n"  # stop the watchdog
                     "loop:\nNOP\nJMP loop\n")
        self.arm(device, 40)
        device.run_steps(200)
        assert device.watchdog_resets == 0
        assert not device.crashed

    def test_serviced_watchdog_never_resets_device(self, device):
        # Firmware that periodically writes the counter-clear bit keeps
        # the (running) watchdog from ever firing.
        load_program(device,
                     "loop:\n"
                     "MOV #0x5A08, &0x0120\n"  # WDTPW | WDTCNTCL
                     "NOP\nNOP\nNOP\n"
                     "JMP loop\n")
        self.arm(device, 60)
        device.run_steps(300)
        assert device.watchdog_resets == 0
        assert not device.crashed

    def test_device_reset_clears_watchdog_reset_count(self, device):
        load_program(device, "loop:\nNOP\nJMP loop\n")
        self.arm(device, 30)
        device.run_steps(60)
        assert device.watchdog_resets >= 1
        device.reset()
        assert device.watchdog_resets == 0


class TestTraceRecorder:
    def make_bundle(self, cycle, pc, irq=False):
        return SignalBundle(cycle=cycle, pc=pc, next_pc=pc + 2, irq=irq)

    def test_record_and_series(self):
        trace = TraceRecorder()
        for index in range(5):
            trace.record(self.make_bundle(index, 0xE000 + 2 * index), {"EXEC": 1})
        assert len(trace) == 5
        assert trace.series("PC")[0] == 0xE000
        assert trace.series("EXEC") == [1] * 5

    def test_disabled_recorder_still_counts_cycles(self):
        trace = TraceRecorder(enabled=False)
        trace.record(self.make_bundle(1, 0xE000))
        assert len(trace) == 0
        assert trace.total_cycles == 1

    def test_steps_with_irq(self):
        trace = TraceRecorder()
        trace.record(self.make_bundle(1, 0xE000))
        trace.record(self.make_bundle(2, 0xE002, irq=True))
        assert len(trace.steps_with_irq()) == 1

    def test_find_first(self):
        trace = TraceRecorder()
        trace.record(self.make_bundle(1, 0xE000))
        trace.record(self.make_bundle(2, 0xE004))
        entry = trace.find_first(lambda e: e.pc == 0xE004)
        assert entry is not None and entry.step == 2

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(self.make_bundle(1, 0xE000))
        trace.clear()
        assert len(trace) == 0 and trace.total_cycles == 0

    def test_bounded_recorder_keeps_most_recent_entries(self):
        trace = TraceRecorder(max_entries=10)
        for index in range(25):
            trace.record(self.make_bundle(index, 0xE000 + 2 * index))
        assert len(trace) == 10
        assert trace.dropped == 15
        assert trace.total_cycles == 25  # cycle accounting is unbounded
        # The survivors are the 10 most recent steps.
        assert [entry.step for entry in trace] == list(range(15, 25))

    def test_bounded_recorder_series_and_waveform(self):
        trace = TraceRecorder(max_entries=4)
        for index in range(8):
            trace.record(self.make_bundle(index, 0xE000 + 2 * index), {"EXEC": 1})
        waveform = trace.waveform(["EXEC", "PC"])
        assert waveform.length == 4
        assert waveform.series("EXEC") == [1, 1, 1, 1]

    def test_bounded_recorder_clear_resets_dropped(self):
        trace = TraceRecorder(max_entries=2)
        for index in range(5):
            trace.record(self.make_bundle(index, 0xE000))
        trace.clear()
        assert trace.dropped == 0 and len(trace) == 0

    def test_invalid_bound_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            TraceRecorder(max_entries=0)

    def test_device_trace_limit_config(self):
        from repro.device.mcu import Device, DeviceConfig
        from repro.isa.assembler import Assembler

        device = Device(DeviceConfig(trace_limit=16))
        image = Assembler().assemble(
            ".section .text\nloop:\nNOP\nJMP loop\n",
            section_addresses={".text": 0xE000},
        )
        image.write_to(device.memory)
        device.ivt.set_reset_vector(0xE000)
        device.reset()
        device.run_steps(100)
        assert len(device.trace) == 16
        assert device.trace.dropped == 84


class TestWaveform:
    def build_trace(self):
        trace = TraceRecorder()
        for index in range(6):
            bundle = SignalBundle(
                cycle=index, pc=0xE000 + 2 * index, next_pc=0xE002 + 2 * index,
                irq=(index == 3),
            )
            trace.record(bundle, {"EXEC": 0 if index >= 4 else 1})
        return trace

    def test_series_extraction(self):
        waveform = self.build_trace().waveform(["EXEC", "irq", "PC"])
        assert waveform.series("irq") == [0, 0, 0, 1, 0, 0]
        assert waveform.series("EXEC") == [1, 1, 1, 1, 0, 0]

    def test_transitions(self):
        waveform = self.build_trace().waveform(["EXEC"])
        assert waveform.transitions("EXEC") == [(4, 1, 0)]

    def test_final_value(self):
        waveform = self.build_trace().waveform(["EXEC"])
        assert waveform.final_value("EXEC") == 0

    def test_ascii_rendering(self):
        text = self.build_trace().waveform(["EXEC", "irq", "PC"]).to_ascii()
        assert "EXEC" in text and "irq" in text and "PC" in text

    def test_rows(self):
        rows = self.build_trace().waveform(["EXEC"]).to_rows()
        assert len(rows) == 6
        assert rows[0]["EXEC"] == 1

    def test_empty_waveform(self):
        waveform = TraceRecorder().waveform(["EXEC"])
        assert waveform.final_value("EXEC") is None
        assert waveform.to_ascii() == "(empty waveform)"

    def test_ascii_annotation_steps_match_strided_columns(self):
        # 150 samples at max_width 72 -> stride 3.  PC changes value at
        # steps 90 and 120; before the fix the annotation used the
        # unstrided indices (90, 120) while the marker row was strided,
        # so the labels pointed at the wrong columns.  The annotated
        # steps must be the *sampled* steps (multiples of the stride)
        # and consistent with the series values at those steps.
        trace = TraceRecorder()
        for index in range(150):
            if index < 90:
                pc = 0xE000
            elif index < 120:
                pc = 0xE800
            else:
                pc = 0xF000
            trace.record(SignalBundle(cycle=index, pc=pc, next_pc=pc))
        waveform = trace.waveform(["PC"])
        text = waveform.to_ascii(max_width=72)
        marker_line = text.splitlines()[0]
        annotation_line = text.splitlines()[1]
        markers = marker_line.split(None, 1)[1]
        stride = 3
        assert len(markers) == 50  # 150 samples strided by 3
        # Parse "step N: 0xVALUE" pairs out of the annotation.
        import re

        pairs = re.findall(r"step (\d+): 0x([0-9A-F]{4})", annotation_line)
        assert pairs, annotation_line
        series = waveform.series("PC")
        for step_text, value_text in pairs:
            step = int(step_text)
            # The annotated step is a sampled step...
            assert step % stride == 0
            # ...whose series value matches the annotation...
            assert series[step] == int(value_text, 16)
            # ...and whose marker column is a transition marker.
            assert markers[step // stride] == "|"
