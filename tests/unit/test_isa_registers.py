"""Unit tests for register naming and status flags."""

import pytest

from repro.isa.registers import (
    CG,
    PC,
    REGISTER_NAMES,
    SP,
    SR,
    StatusFlag,
    is_register_name,
    register_name,
    register_number,
)


class TestRegisterNumbers:
    def test_architectural_aliases(self):
        assert register_number("PC") == PC == 0
        assert register_number("SP") == SP == 1
        assert register_number("SR") == SR == 2
        assert register_number("CG") == CG == 3

    def test_rn_form(self):
        for number in range(16):
            assert register_number("R%d" % number) == number

    def test_case_insensitive(self):
        assert register_number("r12") == 12
        assert register_number("pc") == 0
        assert register_number("  Sp ") == 1

    def test_unknown_register_raises(self):
        with pytest.raises(ValueError):
            register_number("R16")
        with pytest.raises(ValueError):
            register_number("bogus")


class TestRegisterNames:
    def test_round_trip(self):
        for number in range(16):
            assert register_number(register_name(number)) == number

    def test_general_purpose_names(self):
        assert register_name(4) == "R4"
        assert register_name(15) == "R15"

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            register_name(16)
        with pytest.raises(ValueError):
            register_name(-1)

    def test_names_table_length(self):
        assert len(REGISTER_NAMES) == 16


class TestIsRegisterName:
    def test_positive(self):
        assert is_register_name("R7")
        assert is_register_name("sr")

    def test_negative(self):
        assert not is_register_name("loop")
        assert not is_register_name("#5")


class TestStatusFlags:
    def test_flag_bit_positions(self):
        assert StatusFlag.C == 1
        assert StatusFlag.Z == 2
        assert StatusFlag.N == 4
        assert StatusFlag.GIE == 8
        assert StatusFlag.CPUOFF == 0x10
        assert StatusFlag.V == 0x100

    def test_flags_are_disjoint(self):
        all_bits = 0
        for flag in StatusFlag:
            assert all_bits & flag == 0
            all_bits |= flag

    def test_flag_combination(self):
        combined = StatusFlag.GIE | StatusFlag.CPUOFF
        assert combined & StatusFlag.GIE
        assert combined & StatusFlag.CPUOFF
        assert not combined & StatusFlag.Z
