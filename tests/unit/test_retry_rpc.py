"""Unit tests for the retry/RPC layer (`repro.net.rpc`).

The contract under test: a :class:`RetryPolicy` is a bounded TCP-RTO
style schedule (the growing per-attempt reply timeout *is* the
backoff), :class:`RpcChannel` retransmits the *same* ``seq`` so the
service's reply cache can dedup, and the service answers a retransmit
of a completed request from the cache -- never by executing it twice.
"""

import asyncio

import pytest

from repro.net import VerifierService, loopback_pair
from repro.net.rpc import (
    RetryPolicy,
    RpcChannel,
    RpcTimeout,
    backoff_delays,
)


def run(coroutine):
    return asyncio.run(coroutine)


class TestRetryPolicy:
    def test_defaults_are_bounded(self):
        policy = RetryPolicy()
        assert policy.bounded
        assert policy.worst_case_seconds() > 0

    def test_attempt_timeouts_grow_then_cap(self):
        policy = RetryPolicy(max_attempts=5, base_timeout=0.1,
                             multiplier=2.0, max_timeout=0.5)
        assert list(policy.attempt_timeouts()) == \
            pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])
        assert policy.worst_case_seconds() == pytest.approx(1.7)

    def test_unlimited_schedule(self):
        policy = RetryPolicy(max_attempts=None)
        assert not policy.bounded
        assert policy.worst_case_seconds() is None
        timeouts = policy.attempt_timeouts()
        # The generator keeps yielding (spot-check well past any bound).
        for _ in range(100):
            next(timeouts)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_timeout"):
            RetryPolicy(base_timeout=0.0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="max_timeout"):
            RetryPolicy(base_timeout=1.0, max_timeout=0.5)

    def test_backoff_delays_cap(self):
        assert list(backoff_delays(4, base=0.5, multiplier=2.0, cap=1.5)) \
            == [0.5, 1.0, 1.5, 1.5]
        assert list(backoff_delays(0)) == []


def echo_server(transport, drop=0):
    """Reply ``pong`` to every ping, silently dropping the first *drop*
    requests (the flaky-link stand-in)."""

    async def serve():
        seen = 0
        while True:
            message = await transport.recv()
            seen += 1
            if seen <= drop:
                continue
            await transport.send({"kind": "pong", "seq": message["seq"],
                                  "echo": message.get("payload")})

    return asyncio.ensure_future(serve())


class TestRpcChannel:
    def test_plain_call_round_trips(self):
        async def body():
            client, server_side = loopback_pair()
            server = echo_server(server_side)
            channel = RpcChannel(client)
            reply = await channel.call({"kind": "ping", "payload": 7})
            server.cancel()
            await channel.close()
            return reply, channel

        reply, channel = run(body())
        assert reply["kind"] == "pong" and reply["echo"] == 7
        assert channel.retransmits == 0

    def test_sequence_numbers_increment(self):
        async def body():
            client, server_side = loopback_pair()
            server = echo_server(server_side)
            channel = RpcChannel(client)
            first = await channel.call({"kind": "ping"})
            second = await channel.call({"kind": "ping"})
            server.cancel()
            await channel.close()
            return first["seq"], second["seq"]

        first, second = run(body())
        assert second == first + 1

    def test_retransmit_recovers_a_dropped_request(self):
        async def body():
            client, server_side = loopback_pair()
            server = echo_server(server_side, drop=2)
            channel = RpcChannel(client, retry=RetryPolicy(
                max_attempts=5, base_timeout=0.02))
            reply = await channel.call({"kind": "ping"})
            server.cancel()
            await channel.close()
            return reply, channel

        reply, channel = run(body())
        assert reply["kind"] == "pong"
        assert channel.retransmits == 2  # two drops, two retransmits

    def test_exhausted_schedule_raises_rpc_timeout(self):
        async def body():
            client, server_side = loopback_pair()
            server = echo_server(server_side, drop=10 ** 6)  # black hole
            channel = RpcChannel(client, retry=RetryPolicy(
                max_attempts=3, base_timeout=0.01))
            with pytest.raises(RpcTimeout, match="3 attempts"):
                await channel.call({"kind": "ping"})
            server.cancel()
            await channel.close()
            return channel

        channel = run(body())
        assert channel.retransmits == 2  # 3 attempts = 2 retransmits

    def test_per_call_policy_overrides_channel_policy(self):
        async def body():
            client, server_side = loopback_pair()
            server = echo_server(server_side, drop=10 ** 6)
            channel = RpcChannel(client)  # no channel-level retry
            with pytest.raises(RpcTimeout):
                await channel.call({"kind": "ping"},
                                   retry=RetryPolicy(max_attempts=2,
                                                     base_timeout=0.01))
            server.cancel()
            await channel.close()

        run(body())

    def test_straggler_replies_are_dropped(self):
        async def body():
            client, server_side = loopback_pair()

            async def lagging_server():
                # Answer the *previous* request each time: the reply to
                # call N arrives while call N+1 is waiting.
                backlog = []
                while True:
                    message = await server_side.recv()
                    backlog.append(message["seq"])
                    if len(backlog) >= 2:
                        stale = backlog.pop(0)
                        await server_side.send({"kind": "pong", "seq": stale})
                        await server_side.send(
                            {"kind": "pong", "seq": backlog[0]})

            server = asyncio.ensure_future(lagging_server())
            channel = RpcChannel(client, retry=RetryPolicy(
                max_attempts=4, base_timeout=0.05))
            first = await channel.call({"kind": "ping"})
            second = await channel.call({"kind": "ping"})
            server.cancel()
            await channel.close()
            return first, second

        first, second = run(body())
        # Each call got the reply bearing *its* seq, stale ones dropped.
        assert (first["seq"], second["seq"]) == (0, 1)


class TestServiceDedup:
    """Retransmits against the real service: at-most-once execution."""

    def test_retransmit_of_completed_request_replays_cached_reply(self):
        async def body():
            service = VerifierService()
            client, server_side = loopback_pair()
            serve = asyncio.ensure_future(service.serve(server_side))
            await client.send({"kind": "ping", "seq": 41})
            first = await client.recv()
            await client.send({"kind": "ping", "seq": 41})  # retransmit
            second = await client.recv()
            await client.close()
            await serve
            return service, first, second

        service, first, second = run(body())
        assert first["kind"] == second["kind"] == "pong"
        assert first["seq"] == second["seq"] == 41
        assert service.counters["duplicates"] == 1

    def test_distinct_seqs_are_distinct_requests(self):
        async def body():
            service = VerifierService()
            client, server_side = loopback_pair()
            serve = asyncio.ensure_future(service.serve(server_side))
            await client.send({"kind": "ping", "seq": 1})
            await client.recv()
            await client.send({"kind": "ping", "seq": 2})
            await client.recv()
            await client.close()
            await serve
            return service

        service = run(body())
        assert service.counters["duplicates"] == 0
