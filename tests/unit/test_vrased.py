"""Unit tests for the VRASED substrate (config, monitor, SW-Att, protocol)."""

import pytest

from repro.cpu.signals import MemoryRead, MemoryWrite, SignalBundle
from repro.crypto.keys import KeyStore
from repro.memory.layout import MemoryLayout, MemoryRegion
from repro.memory.memory import Memory
from repro.vrased.config import VrasedConfig
from repro.vrased.hwmod import VrasedMonitor
from repro.vrased.protocol import AttestationProtocol, Verifier
from repro.vrased.swatt import SwAtt


def bundle(pc=0xA400, next_pc=None, reads=(), writes=(), dma_writes=(),
           irq=False, dma_en=False, cycle=1):
    """Build a signal bundle with the given activity."""
    return SignalBundle(
        cycle=cycle,
        pc=pc,
        next_pc=pc + 2 if next_pc is None else next_pc,
        irq=irq,
        dma_en=dma_en or bool(dma_writes),
        reads=[MemoryRead(address, 0, 2) for address in reads],
        writes=[MemoryWrite(address, 0, 2) for address in writes],
        dma_writes=[MemoryWrite(address, 0, 2) for address in dma_writes],
    )


@pytest.fixture
def config():
    return VrasedConfig.for_layout(MemoryLayout.default())


@pytest.fixture
def monitor(config):
    return VrasedMonitor(config)


class TestVrasedConfig:
    def test_for_layout_regions_inside_program_memory(self, config):
        layout = MemoryLayout.default()
        config.validate_against(layout)
        assert layout.program.contains_region(config.key_region)
        assert layout.program.contains_region(config.swatt_region)

    def test_key_and_swatt_do_not_overlap(self, config):
        assert not config.key_region.overlaps(config.swatt_region)

    def test_overlapping_regions_rejected(self):
        with pytest.raises(ValueError):
            VrasedConfig(
                key_region=MemoryRegion(0xA000, 0xA0FF, "key"),
                swatt_region=MemoryRegion(0xA080, 0xA3FF, "swatt"),
            )

    def test_misplaced_region_rejected(self):
        config = VrasedConfig(
            key_region=MemoryRegion(0x0300, 0x031F, "key"),
            swatt_region=MemoryRegion(0xA020, 0xA3FF, "swatt"),
        )
        with pytest.raises(ValueError):
            config.validate_against(MemoryLayout.default())


class TestVrasedMonitorKeyRules:
    def test_key_read_outside_swatt_is_violation(self, config, monitor):
        monitor.observe(bundle(pc=0xE000, reads=[config.key_region.start]))
        assert monitor.violated
        assert monitor.violations_for("key-access")

    def test_key_read_inside_swatt_is_allowed(self, config, monitor):
        monitor.observe(bundle(pc=config.swatt_region.start,
                               reads=[config.key_region.start]))
        assert not monitor.violations_for("key-access")

    def test_dma_to_key_is_violation(self, config, monitor):
        monitor.observe(bundle(pc=0xE000, dma_writes=[config.key_region.start]))
        assert monitor.violations_for("key-dma")

    def test_key_write_is_violation(self, config, monitor):
        monitor.observe(bundle(pc=config.swatt_region.start,
                               writes=[config.key_region.start]))
        assert monitor.violations_for("key-write")


class TestVrasedMonitorAtomicity:
    def test_entry_not_at_first_instruction(self, config, monitor):
        entry_mid = config.swatt_region.start + 10
        monitor.observe(bundle(pc=0xE000, next_pc=entry_mid))
        monitor.observe(bundle(pc=entry_mid))
        assert monitor.violations_for("swatt-entry")

    def test_entry_at_first_instruction_ok(self, config, monitor):
        start = config.swatt_region.start
        monitor.observe(bundle(pc=0xE000, next_pc=start))
        monitor.observe(bundle(pc=start))
        assert not monitor.violations_for("swatt-entry")

    def test_interrupt_during_swatt(self, config, monitor):
        monitor.observe(bundle(pc=config.swatt_region.start, irq=True))
        assert monitor.violations_for("swatt-interrupt")

    def test_dma_during_swatt(self, config, monitor):
        monitor.observe(bundle(pc=config.swatt_region.start, dma_en=True))
        assert monitor.violations_for("swatt-dma")

    def test_exit_from_middle_is_violation(self, config, monitor):
        middle = config.swatt_region.start + 20
        monitor.observe(bundle(pc=config.swatt_region.start, next_pc=middle))
        monitor.observe(bundle(pc=middle, next_pc=0xE000))
        assert monitor.violations_for("swatt-exit")

    def test_exit_from_last_word_is_allowed(self, config, monitor):
        exit_pc = config.swatt_region.end - 1
        monitor.observe(bundle(pc=exit_pc, next_pc=0xE000))
        assert not monitor.violations_for("swatt-exit")

    def test_configured_exit_address(self, config):
        config.swatt_exit = config.swatt_region.start + 40
        monitor = VrasedMonitor(config)
        monitor.observe(bundle(pc=config.swatt_exit, next_pc=0xE000))
        assert not monitor.violations_for("swatt-exit")

    def test_swatt_code_write_is_violation(self, config, monitor):
        monitor.observe(bundle(pc=0xE000, writes=[config.swatt_region.start + 4]))
        assert monitor.violations_for("swatt-write")

    def test_reset_clears_state(self, config, monitor):
        monitor.observe(bundle(pc=0xE000, writes=[config.key_region.start]))
        assert monitor.violated and monitor.reset_pending
        monitor.reset()
        assert not monitor.violated and not monitor.reset_pending

    def test_signal_values(self, config, monitor):
        assert monitor.signal_values() == {"VRASED_OK": 1}
        monitor.observe(bundle(pc=0xE000, writes=[config.key_region.start]))
        assert monitor.signal_values() == {"VRASED_OK": 0}


class TestSwAtt:
    def test_measurement_depends_on_memory_contents(self):
        store = KeyStore()
        key = store.provision("dev")
        swatt = SwAtt(key)
        memory = Memory()
        region = MemoryRegion(0xE000, 0xE01F, "attested")
        memory.load_bytes(0xE000, b"\x01" * 32)
        report_a = swatt.measure(memory, b"\x00" * 32, [region])
        memory.load_bytes(0xE000, b"\x02" * 32)
        report_b = swatt.measure(memory, b"\x00" * 32, [region])
        assert report_a.measurement != report_b.measurement

    def test_measurement_depends_on_challenge_and_region_bounds(self):
        store = KeyStore()
        key = store.provision("dev")
        swatt = SwAtt(key)
        memory = Memory()
        region_a = MemoryRegion(0xE000, 0xE01F, "a")
        region_b = MemoryRegion(0xE020, 0xE03F, "b")
        r1 = swatt.measure(memory, b"\x00" * 32, [region_a])
        r2 = swatt.measure(memory, b"\x01" + b"\x00" * 31, [region_a])
        r3 = swatt.measure(memory, b"\x00" * 32, [region_b])
        assert len({r1.measurement, r2.measurement, r3.measurement}) == 3

    def test_scalars_fold_into_measurement(self):
        store = KeyStore()
        key = store.provision("dev")
        swatt = SwAtt(key)
        memory = Memory()
        region = MemoryRegion(0xE000, 0xE01F, "a")
        with_flag = swatt.measure(memory, b"\x00" * 32, [region], scalars={"EXEC": 1})
        without_flag = swatt.measure(memory, b"\x00" * 32, [region], scalars={"EXEC": 0})
        assert with_flag.measurement != without_flag.measurement
        assert with_flag.claim("EXEC") == 1

    def test_snapshots_travel_in_the_clear(self):
        store = KeyStore()
        key = store.provision("dev")
        swatt = SwAtt(key)
        memory = Memory()
        memory.load_bytes(0x0600, b"\xAB\xCD")
        region = MemoryRegion(0xE000, 0xE01F, "a")
        output = MemoryRegion(0x0600, 0x0601, "or")
        report = swatt.measure(memory, b"\x00" * 32, [region],
                               snapshot_regions={"OR": output})
        assert report.snapshots["OR"] == b"\xAB\xCD"

    def test_expected_measurement_matches_prover(self):
        store = KeyStore()
        key = store.provision("dev")
        swatt = SwAtt(key)
        memory = Memory()
        memory.load_bytes(0xE000, b"\x7F" * 32)
        region = MemoryRegion(0xE000, 0xE01F, "a")
        challenge = b"\x05" * 32
        report = swatt.measure(memory, challenge, [region])
        expected = SwAtt.expected_measurement(
            key, challenge, [(region, b"\x7F" * 32)]
        )
        assert expected == report.measurement

    def test_expected_measurement_size_mismatch_rejected(self):
        store = KeyStore()
        key = store.provision("dev")
        region = MemoryRegion(0xE000, 0xE01F, "a")
        with pytest.raises(ValueError):
            SwAtt.expected_measurement(key, b"\x00" * 32, [(region, b"\x00" * 3)])


class TestAttestationProtocol:
    def build(self, device):
        verifier = Verifier()
        protocol = AttestationProtocol(device, verifier, "prover-1")
        device.memory.load_bytes(0xC000, b"\x42" * 64)
        protocol.snapshot_reference()
        return verifier, protocol

    def test_honest_prover_accepted(self, device):
        _verifier, protocol = self.build(device)
        result = protocol.run()
        assert result.accepted

    def test_modified_program_memory_rejected(self, device):
        _verifier, protocol = self.build(device)
        device.memory.load_bytes(0xC100, b"\x99")
        result = protocol.run()
        assert not result.accepted
        assert result.reason == "measurement mismatch"

    def test_request_tokens_authenticate_verifier(self, device):
        verifier, protocol = self.build(device)
        request = verifier.create_request("prover-1")
        assert request.verify_token(protocol.device_key)

    def test_challenge_single_use(self, device):
        verifier, protocol = self.build(device)
        request = verifier.create_request("prover-1")
        report = protocol.prover.swatt.measure(
            device.memory, request.challenge, protocol.attested_regions()
        )
        assert verifier.verify(report).accepted
        assert not verifier.verify(report).accepted  # replay rejected

    def test_unknown_challenge_rejected(self, device):
        verifier, protocol = self.build(device)
        report = protocol.prover.swatt.measure(
            device.memory, b"\xEE" * 32, protocol.attested_regions()
        )
        result = verifier.verify(report)
        assert not result.accepted
        assert "challenge" in result.reason

    def test_rejected_report_burns_its_challenge(self, device):
        # The pre-fix replay window: a rejected report left its
        # challenge in the table, so a later (corrected or identical)
        # report against the same challenge was still accepted.
        verifier, protocol = self.build(device)
        request = verifier.create_request("prover-1")
        good = protocol.prover.swatt.measure(
            device.memory, request.challenge, protocol.attested_regions()
        )
        from repro.vrased.swatt import AttestationReport

        bad = AttestationReport(device_id="prover-1",
                                challenge=request.challenge,
                                measurement=b"\x00" * 32)
        assert verifier.verify(bad).reason == "measurement mismatch"
        retried = verifier.verify(good)
        assert not retried.accepted
        assert "challenge" in retried.reason

    def test_wrong_device_report_burns_its_challenge(self, device):
        verifier, protocol = self.build(device)
        verifier.enroll("prover-2")
        request = verifier.create_request("prover-1")
        report = protocol.prover.swatt.measure(
            device.memory, request.challenge, protocol.attested_regions()
        )
        from repro.vrased.swatt import AttestationReport

        hijacked = AttestationReport(device_id="prover-2",
                                     challenge=request.challenge,
                                     measurement=report.measurement)
        rejected = verifier.verify(hijacked)
        assert "different device" in rejected.reason
        # The challenge is consumed on this terminal verdict too.
        assert not verifier.verify(report).accepted
        assert verifier.issued_count() == 0

    def test_issued_table_stays_bounded_over_failed_exchanges(self, device):
        verifier, protocol = self.build(device)
        from repro.vrased.swatt import AttestationReport

        for _ in range(10000):
            request = verifier.create_request("prover-1")
            bogus = AttestationReport(device_id="prover-1",
                                      challenge=request.challenge,
                                      measurement=b"\xFF" * 32)
            assert not verifier.verify(bogus).accepted
        assert verifier.issued_count() == 0

    def test_abandoned_challenges_bounded_per_device(self, device):
        verifier, protocol = self.build(device)
        for _ in range(10000):
            verifier.create_request("prover-1")  # issued, never answered
        assert verifier.issued_count("prover-1") == verifier.max_issued_per_device
        assert verifier.issued_count() == verifier.max_issued_per_device

    def test_chatty_device_cannot_evict_other_devices_challenges(self, device):
        verifier, _protocol = self.build(device)
        quiet_protocol = AttestationProtocol(device, verifier, "prover-2")
        quiet_protocol.snapshot_reference()
        quiet = verifier.create_request("prover-2")
        for _ in range(10 * verifier.max_issued_per_device):
            verifier.create_request("prover-1")  # the chatty one
        # The flood saturated only prover-1's quota; prover-2's single
        # outstanding challenge survived and still verifies.
        assert verifier.issued_count("prover-1") == verifier.max_issued_per_device
        assert verifier.issued_count("prover-2") == 1
        report = quiet_protocol.prover.swatt.measure(
            device.memory, quiet.challenge, quiet_protocol.attested_regions()
        )
        assert verifier.verify(report).accepted

    def test_challenge_ttl_expires_stale_challenges(self, device):
        import itertools

        ticks = itertools.count()
        verifier = Verifier(challenge_ttl=10.0, clock=lambda: next(ticks))
        protocol = AttestationProtocol(device, verifier, "prover-1")
        device.memory.load_bytes(0xC000, b"\x42" * 64)
        protocol.snapshot_reference()
        request = verifier.create_request("prover-1")
        report = protocol.prover.swatt.measure(
            device.memory, request.challenge, protocol.attested_regions()
        )
        for _ in range(20):  # let more than the TTL elapse
            next(ticks)
        result = verifier.verify(report)
        assert not result.accepted
        assert "stale" in result.reason
        assert verifier.issued_count() == 0

    def test_invalid_table_parameters_rejected(self):
        with pytest.raises(ValueError):
            Verifier(max_issued_per_device=0)
        with pytest.raises(ValueError):
            Verifier(challenge_ttl=0)

    def test_eviction_at_cap_one_keeps_table_consistent(self, device):
        # Evicting a device's last outstanding challenge deletes its
        # per-device dict; the fresh challenge must land in a live dict,
        # not the orphaned one, and remain fully usable.
        verifier = Verifier(max_issued_per_device=1)
        protocol = AttestationProtocol(device, verifier, "prover-1")
        device.memory.load_bytes(0xC000, b"\x42" * 64)
        protocol.snapshot_reference()
        verifier.create_request("prover-1")
        request = verifier.create_request("prover-1")  # evicts the first
        assert verifier.issued_count("prover-1") == 1
        assert verifier.issued_count() == 1
        report = protocol.prover.swatt.measure(
            device.memory, request.challenge, protocol.attested_regions()
        )
        assert verifier.verify(report).accepted
        assert verifier.issued_count() == 0

    def test_monitor_violation_blocks_exchange(self, device):
        verifier = Verifier()
        config = None
        from repro.vrased.config import VrasedConfig
        config = VrasedConfig.for_layout(device.layout)
        monitor = VrasedMonitor(config)
        protocol = AttestationProtocol(device, verifier, "prover-2",
                                       config=config, monitor=monitor)
        protocol.snapshot_reference()
        monitor.observe(bundle(pc=0xE000, writes=[config.key_region.start]))
        result = protocol.run()
        assert not result.accepted
        assert "reset" in result.reason
        # The aborted exchange's challenge must not linger: no report
        # will ever answer it.
        assert verifier.issued_count() == 0
