"""Differential tests for the batched step loop and event pruning.

``Device.run_batch`` must be indistinguishable from calling
``Device.step`` in a loop -- byte-identical traces, identical CPU and
cycle state -- while hoisting the per-step crash/event/tick checks out
of quiescent stretches (including the observer-free ultra-fast path
that skips signal-bundle construction entirely).
"""

import pytest

from repro.device.mcu import Device, DeviceConfig
from repro.firmware.blinker import blinker_firmware
from repro.firmware.syringe_pump import PumpParameters, syringe_pump_firmware
from repro.firmware.testbench import PoxTestbench, TestbenchConfig
from repro.isa.assembler import Assembler


def load_program(device, source, base=0xE000):
    image = Assembler().assemble(
        ".section .text\n" + source, section_addresses={".text": base}
    )
    image.write_to(device.memory)
    device.ivt.set_reset_vector(base)
    device.reset()
    return image


def stepped(bench_builder, steps):
    """Run *steps* through the per-step loop; return the bench."""
    bench = bench_builder()
    for _ in range(steps):
        bench.device.step()
    return bench


def batched(bench_builder, steps):
    """Run *steps* through run_batch; return the bench."""
    bench = bench_builder()
    bench.device.run_batch(steps)
    return bench


def assert_same_outcome(reference, candidate):
    assert candidate.device.step_number == reference.device.step_number
    assert candidate.device.total_cycles == reference.device.total_cycles
    assert candidate.device.cpu.registers == reference.device.cpu.registers
    assert candidate.device.crashed == reference.device.crashed
    assert candidate.device.trace.total_cycles == reference.device.trace.total_cycles
    assert candidate.trace_entries() == reference.trace_entries()


class TestRunBatchDifferential:
    def test_traces_identical_with_monitor_and_events(self):
        def build():
            bench = PoxTestbench(blinker_firmware(authorized=True),
                                 TestbenchConfig())
            bench.device.schedule_button_press(6)
            bench.device.schedule_button_press(120)
            return bench

        assert_same_outcome(stepped(build, 400), batched(build, 400))

    def test_traces_identical_on_interrupt_driven_pump(self):
        def build():
            bench = PoxTestbench(
                syringe_pump_firmware(PumpParameters(dosage_cycles=60)),
                TestbenchConfig())
            bench.protocol.deliver_challenge()
            return bench

        assert_same_outcome(stepped(build, 600), batched(build, 600))

    def test_traces_identical_through_crash(self):
        def build():
            bench = PoxTestbench(blinker_firmware(authorized=True),
                                 TestbenchConfig())
            # Jump into unprogrammed memory: an illegal instruction
            # crashes the device, which then keeps emitting crash
            # bundles -- the batched loop must record the same tail.
            bench.device.cpu.pc = 0x5000
            return bench

        reference, candidate = stepped(build, 40), batched(build, 40)
        assert reference.device.crashed
        assert_same_outcome(reference, candidate)

    def test_observer_free_state_identical(self):
        def build():
            bench = PoxTestbench(blinker_firmware(authorized=True),
                                 TestbenchConfig(trace_enabled=False))
            bench.device.detach_monitor(bench.monitor)
            return bench

        reference, candidate = stepped(build, 3000), batched(build, 3000)
        assert_same_outcome(reference, candidate)
        assert candidate.trace_entries() == []

    def test_observer_free_crash_state_identical(self):
        def build():
            bench = PoxTestbench(blinker_firmware(authorized=True),
                                 TestbenchConfig(trace_enabled=False))
            bench.device.detach_monitor(bench.monitor)
            bench.device.cpu.pc = 0x5000
            return bench

        reference, candidate = stepped(build, 25), batched(build, 25)
        assert reference.device.crashed and candidate.device.crashed
        assert_same_outcome(reference, candidate)

    def test_run_steps_goes_through_the_batched_loop(self, device):
        load_program(device, "loop:\nNOP\nJMP loop\n")
        device.run_steps(10)
        assert device.step_number == 10

    def test_run_batch_zero_steps(self, device):
        load_program(device, "NOP\nNOP\n")
        assert device.run_batch(0) == 0
        assert device.step_number == 0

    def test_event_scheduled_mid_run_fires_in_batch(self, device):
        load_program(device, "loop:\nNOP\nJMP loop\n")
        fired = []
        device.schedule(5, lambda dev: dev.schedule(
            12, lambda d: fired.append(d.step_number), label="nested"))
        device.run_batch(30)
        assert fired == [12]


class TestEventPruning:
    def test_fired_events_are_pruned_from_the_schedule(self, device):
        load_program(device, "loop:\nNOP\nJMP loop\n")
        events = [device.schedule(step, lambda dev: None) for step in (2, 4, 6)]
        device.run_steps(5)
        assert [event.fired for event in events] == [True, True, False]
        assert device._events == [events[2]]
        device.run_steps(2)
        assert device._events == []

    def test_schedule_keeps_events_sorted_and_stable(self, device):
        order = []
        first = device.schedule(7, lambda dev: order.append("first@7"))
        early = device.schedule(3, lambda dev: order.append("early@3"))
        second = device.schedule(7, lambda dev: order.append("second@7"))
        assert device._events == [early, first, second]
        load_program(device, "loop:\nNOP\nJMP loop\n")
        # load_program resets the device, which clears the schedule.
        device.schedule(7, lambda dev: order.append("first@7"))
        device.schedule(3, lambda dev: order.append("early@3"))
        device.schedule(7, lambda dev: order.append("second@7"))
        device.run_steps(10)
        assert order == ["early@3", "first@7", "second@7"]

    def test_past_due_event_fires_on_next_step(self, device):
        load_program(device, "loop:\nNOP\nJMP loop\n")
        device.run_steps(10)
        fired = []
        device.schedule(3, lambda dev: fired.append(dev.step_number))
        device.run_steps(1)
        assert fired == [11]

    def test_reset_clears_pending_events(self, device):
        load_program(device, "loop:\nNOP\nJMP loop\n")
        device.schedule(50, lambda dev: None)
        device.reset()
        assert device._events == []

    def test_long_schedule_does_not_rescan_fired_events(self, device):
        # O(events)-per-step regression guard: after the schedule has
        # fully fired, the hot loop must not be holding the event list.
        load_program(device, "loop:\nNOP\nJMP loop\n")
        for step in range(1, 101):
            device.schedule(step, lambda dev: None)
        device.run_steps(100)
        assert device._events == []
