"""Unit tests for the memory subsystem (layout, memory, IVT)."""

import pytest

from repro.memory.ivt import IVT_BASE, IVT_END, InterruptVectorTable, RESET_VECTOR_INDEX
from repro.memory.layout import MemoryLayout, MemoryRegion
from repro.memory.memory import Memory, MemoryError


class TestMemoryRegion:
    def test_size_is_inclusive(self):
        assert MemoryRegion(0x10, 0x1F).size == 16

    def test_contains(self):
        region = MemoryRegion(0x100, 0x1FF)
        assert region.contains(0x100)
        assert region.contains(0x1FF)
        assert not region.contains(0x200)
        assert not region.contains(0x0FF)

    def test_contains_span(self):
        region = MemoryRegion(0x100, 0x10F)
        assert region.contains_span(0x100, 16)
        assert not region.contains_span(0x100, 17)
        assert not region.contains_span(0x100, 0)

    def test_overlaps(self):
        a = MemoryRegion(0x100, 0x1FF)
        assert a.overlaps(MemoryRegion(0x1FF, 0x2FF))
        assert not a.overlaps(MemoryRegion(0x200, 0x2FF))

    def test_contains_region(self):
        outer = MemoryRegion(0x100, 0x1FF)
        assert outer.contains_region(MemoryRegion(0x120, 0x130))
        assert not outer.contains_region(MemoryRegion(0x120, 0x230))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            MemoryRegion(0x200, 0x100)
        with pytest.raises(ValueError):
            MemoryRegion(0, 0x10000)

    def test_str_contains_bounds(self):
        text = str(MemoryRegion(0xE000, 0xE0FF, "ER"))
        assert "E000" in text and "E0FF" in text


class TestMemoryLayout:
    def test_default_regions_present(self):
        layout = MemoryLayout.default()
        for name in ("peripherals", "data", "program", "ivt"):
            assert layout.has_region(name)

    def test_ivt_is_last_32_bytes(self):
        layout = MemoryLayout.default()
        assert layout.ivt.start == 0xFFE0
        assert layout.ivt.end == 0xFFFF
        assert layout.ivt.size == 32

    def test_region_of(self):
        layout = MemoryLayout.default()
        assert layout.region_of(0x0300) == "data"
        assert layout.region_of(0xFFFE) == "ivt"
        assert layout.region_of(0xC000) == "program"

    def test_region_of_unmapped_address(self):
        layout = MemoryLayout.default()
        assert layout.region_of(0x5000) is None

    def test_overlapping_layout_rejected(self):
        with pytest.raises(ValueError):
            MemoryLayout({"a": (0x0000, 0x00FF), "b": (0x0080, 0x01FF)})

    def test_iteration(self):
        names = {region.name for region in MemoryLayout.default()}
        assert "program" in names


class TestMemory:
    def test_byte_read_write(self, memory):
        memory.write_byte(0x0200, 0xAB)
        assert memory.read_byte(0x0200) == 0xAB

    def test_word_little_endian(self, memory):
        memory.write_word(0x0200, 0x1234)
        assert memory.read_byte(0x0200) == 0x34
        assert memory.read_byte(0x0201) == 0x12

    def test_word_access_aligns_address(self, memory):
        memory.write_word(0x0201, 0xBEEF)
        assert memory.peek_word(0x0200) == 0xBEEF

    def test_values_are_masked(self, memory):
        memory.write_byte(0x0200, 0x1FF)
        assert memory.peek_byte(0x0200) == 0xFF
        memory.write_word(0x0202, 0x12345)
        assert memory.peek_word(0x0202) == 0x2345

    def test_load_bytes_and_dump(self, memory):
        memory.load_bytes(0x0400, b"\x01\x02\x03")
        assert memory.dump(0x0400, 3) == b"\x01\x02\x03"

    def test_dump_region(self, memory):
        region = MemoryRegion(0x0400, 0x0403)
        memory.load_bytes(0x0400, b"\xAA\xBB\xCC\xDD")
        assert memory.dump_region(region) == b"\xAA\xBB\xCC\xDD"

    def test_fill(self, memory):
        memory.fill(0x0500, 4, 0x5A)
        assert memory.dump(0x0500, 4) == b"\x5A" * 4

    def test_watchers_see_runtime_accesses(self, memory):
        seen = []
        memory.add_watcher(seen.append)
        memory.write_word(0x0200, 1)
        memory.read_byte(0x0200)
        assert len(seen) == 2
        assert seen[0].is_write and not seen[1].is_write

    def test_watchers_do_not_see_load_time_stores(self, memory):
        seen = []
        memory.add_watcher(seen.append)
        memory.load_bytes(0x0200, b"\x00\x01")
        memory.peek_word(0x0200)
        assert seen == []

    def test_remove_watcher(self, memory):
        seen = []
        memory.add_watcher(seen.append)
        memory.remove_watcher(seen.append)
        memory.write_byte(0x0200, 1)
        assert seen == []

    def test_invalid_size_rejected(self):
        with pytest.raises(MemoryError):
            Memory(size=0)
        with pytest.raises(MemoryError):
            Memory(size=0x20000)

    def test_addresses_wrap_to_16_bits(self, memory):
        memory.write_byte(0x1_0200, 0x77)
        assert memory.peek_byte(0x0200) == 0x77


class TestPeekView:
    def test_view_matches_dump(self, memory):
        memory.load_bytes(0x0400, b"\x01\x02\x03\x04")
        view = memory.peek_view(0x0400, 4)
        assert isinstance(view, memoryview)
        assert bytes(view) == memory.dump(0x0400, 4) == b"\x01\x02\x03\x04"

    def test_view_region(self, memory):
        region = MemoryRegion(0x0400, 0x0403)
        memory.load_bytes(0x0400, b"\xAA\xBB\xCC\xDD")
        assert bytes(memory.view_region(region)) == memory.dump_region(region)

    def test_view_is_zero_copy_and_aliases_writes(self, memory):
        view = memory.peek_view(0x0400, 2)
        snapshot = memory.dump(0x0400, 2)
        memory.write_byte(0x0400, 0x99)
        assert view[0] == 0x99          # the view tracks the store...
        assert snapshot[0] == 0x00      # ...the dump stays a copy

    def test_view_is_read_only(self, memory):
        view = memory.peek_view(0x0400, 2)
        assert view.readonly
        with pytest.raises(TypeError):
            view[0] = 1

    def test_view_does_not_notify_watchers(self, memory):
        seen = []
        memory.add_watcher(seen.append)
        bytes(memory.peek_view(0x0200, 8))
        assert seen == []

    def test_out_of_range_view_rejected(self, memory):
        with pytest.raises(MemoryError):
            memory.peek_view(0xFFFF, 2)

    def test_zero_length_view(self, memory):
        assert bytes(memory.peek_view(0x0400, 0)) == b""


class TestInterruptVectorTable:
    def test_geometry(self, memory):
        ivt = InterruptVectorTable(memory)
        assert ivt.base == IVT_BASE
        assert ivt.region.start == 0xFFE0
        assert ivt.region.end == IVT_END
        assert ivt.entries == 16

    def test_entry_addresses(self, memory):
        ivt = InterruptVectorTable(memory)
        assert ivt.entry_address(0) == 0xFFE0
        assert ivt.entry_address(RESET_VECTOR_INDEX) == 0xFFFE
        with pytest.raises(IndexError):
            ivt.entry_address(16)

    def test_index_of(self, memory):
        ivt = InterruptVectorTable(memory)
        assert ivt.index_of(0xFFE0) == 0
        assert ivt.index_of(0xFFFE) == 15
        assert ivt.index_of(0xFFE5) == 2
        with pytest.raises(ValueError):
            ivt.index_of(0xE000)

    def test_set_get_vector(self, memory):
        ivt = InterruptVectorTable(memory)
        ivt.set_vector(3, 0xE122)
        assert ivt.get_vector(3) == 0xE122

    def test_reset_vector(self, memory):
        ivt = InterruptVectorTable(memory)
        ivt.set_reset_vector(0xA400)
        assert ivt.get_reset_vector() == 0xA400

    def test_load_time_writes_bypass_watchers(self, memory):
        seen = []
        memory.add_watcher(seen.append)
        ivt = InterruptVectorTable(memory)
        ivt.set_vector(2, 0xE000, load_time=True)
        assert seen == []
        ivt.set_vector(2, 0xE000, load_time=False)
        assert len(seen) == 1

    def test_snapshot_and_as_dict(self, memory):
        ivt = InterruptVectorTable(memory)
        ivt.set_vector(2, 0xE010)
        ivt.set_vector(9, 0xE020)
        snapshot = ivt.snapshot()
        assert len(snapshot) == 16
        assert snapshot[2] == 0xE010
        assert ivt.as_dict() == {2: 0xE010, 9: 0xE020}

    def test_vectors_pointing_into(self, memory):
        ivt = InterruptVectorTable(memory)
        er = MemoryRegion(0xE000, 0xE0FF, "ER")
        ivt.set_vector(2, 0xE010)
        ivt.set_vector(5, 0xA400)
        assert ivt.vectors_pointing_into(er) == [2]
