"""Unit tests for the from-scratch crypto primitives (vs. hashlib/hmac)."""

import hashlib
import hmac as std_hmac

import pytest

from repro.crypto.hmac import Hmac, hmac_sha256, verify_hmac
from repro.crypto.keys import (
    DeviceKey,
    KeyStore,
    constant_time_compare,
    derive_key,
)
from repro.crypto.sha256 import Sha256, sha256


class TestSha256:
    KNOWN_VECTORS = [
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
    ]

    @pytest.mark.parametrize("message,expected", KNOWN_VECTORS)
    def test_fips_vectors(self, message, expected):
        assert Sha256(message).hexdigest() == expected

    @pytest.mark.parametrize("length", [0, 1, 55, 56, 63, 64, 65, 127, 128, 1000])
    def test_matches_hashlib_at_padding_boundaries(self, length):
        message = bytes(range(256)) * 4
        message = message[:length]
        assert sha256(message) == hashlib.sha256(message).digest()

    def test_incremental_update_equals_one_shot(self):
        hasher = Sha256()
        hasher.update(b"hello ")
        hasher.update(b"world")
        assert hasher.digest() == sha256(b"hello world")

    def test_digest_does_not_consume_state(self):
        hasher = Sha256(b"abc")
        first = hasher.digest()
        second = hasher.digest()
        assert first == second
        hasher.update(b"def")
        assert hasher.digest() == hashlib.sha256(b"abcdef").digest()

    def test_copy_is_independent(self):
        hasher = Sha256(b"abc")
        clone = hasher.copy()
        clone.update(b"def")
        assert hasher.digest() == hashlib.sha256(b"abc").digest()
        assert clone.digest() == hashlib.sha256(b"abcdef").digest()

    def test_digest_size(self):
        assert len(sha256(b"x")) == 32

    def test_many_small_chunks_match_hashlib(self):
        # The UART-fed attestation pattern: thousands of tiny updates.
        # The buffer is a bytearray so this stays linear in total size;
        # the digest must still match hashlib whatever the chunking.
        message = bytes(range(256)) * 20
        for chunk_size in (1, 3, 7, 63, 64, 65):
            hasher = Sha256()
            for offset in range(0, len(message), chunk_size):
                hasher.update(message[offset:offset + chunk_size])
            assert hasher.digest() == hashlib.sha256(message).digest(), chunk_size

    def test_interleaved_digest_copy_and_chunked_update(self):
        reference = hashlib.sha256()
        hasher = Sha256()
        for piece in (b"a" * 5, b"b" * 70, b"c" * 1, b"d" * 64, b"e" * 200):
            hasher.update(piece)
            reference.update(piece)
            assert hasher.digest() == reference.digest()
            assert hasher.copy().digest() == reference.digest()

    def test_buffer_stays_below_one_block(self):
        hasher = Sha256()
        for _ in range(1000):
            hasher.update(b"x" * 17)
        assert len(hasher._buffer) < 64


class TestHmac:
    def test_rfc4231_test_case_1(self):
        key = b"\x0b" * 20
        data = b"Hi There"
        expected = (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )
        assert Hmac(key, data).hexdigest() == expected

    def test_rfc4231_test_case_2(self):
        key = b"Jefe"
        data = b"what do ya want for nothing?"
        expected = (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )
        assert hmac_sha256(key, data).hex() == expected

    @pytest.mark.parametrize("key_length", [0, 1, 32, 63, 64, 65, 200])
    def test_matches_stdlib_for_various_key_lengths(self, key_length):
        key = bytes(range(256))[:key_length]
        data = b"attested memory contents" * 7
        assert hmac_sha256(key, data) == std_hmac.new(key, data, hashlib.sha256).digest()

    def test_incremental_update(self):
        mac = Hmac(b"key")
        mac.update(b"part one ")
        mac.update(b"part two")
        assert mac.digest() == hmac_sha256(b"key", b"part one part two")

    def test_copy(self):
        mac = Hmac(b"key", b"abc")
        clone = mac.copy()
        clone.update(b"def")
        assert mac.digest() == hmac_sha256(b"key", b"abc")
        assert clone.digest() == hmac_sha256(b"key", b"abcdef")

    def test_verify_hmac_accepts_valid_tag(self):
        tag = hmac_sha256(b"key", b"message")
        assert verify_hmac(b"key", b"message", tag)

    def test_verify_hmac_rejects_tampering(self):
        tag = bytearray(hmac_sha256(b"key", b"message"))
        tag[0] ^= 1
        assert not verify_hmac(b"key", b"message", bytes(tag))
        assert not verify_hmac(b"key", b"message", b"short")


class TestKeys:
    def test_constant_time_compare(self):
        assert constant_time_compare(b"abc", b"abc")
        assert not constant_time_compare(b"abc", b"abd")
        assert not constant_time_compare(b"abc", b"abcd")

    def test_derive_key_is_deterministic_and_label_separated(self):
        master = b"\x11" * 32
        a = derive_key(master, "attestation")
        b = derive_key(master, "attestation")
        c = derive_key(master, "request-auth")
        assert a == b
        assert a != c
        assert len(a) == 32

    def test_derive_key_arbitrary_length(self):
        master = b"\x22" * 32
        assert len(derive_key(master, "x", length=80)) == 80

    def test_device_key_subkeys_differ(self):
        key = DeviceKey("dev", b"\x33" * 32)
        assert key.attestation_key() != key.authentication_key()

    def test_keystore_provision_and_lookup(self):
        store = KeyStore()
        key = store.provision("device-1")
        assert store.has_device("device-1")
        assert store.get("device-1") is key
        assert len(key.master_key) == 32

    def test_keystore_explicit_key(self):
        store = KeyStore()
        key = store.provision("device-2", master_key=b"\x44" * 32)
        assert key.master_key == b"\x44" * 32

    def test_keystore_unknown_device(self):
        store = KeyStore()
        with pytest.raises(KeyError):
            store.get("missing")
        assert store.device_ids() == []
