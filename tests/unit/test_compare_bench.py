"""Unit tests for ``benchmarks/compare_bench.py`` (the CI perf gate)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "compare_bench.py"
_spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def _payload(interp, blocks):
    """A minimal labeled sim-profile artifact (idle-workload rows)."""
    return {
        "benchmark": "execution_engine_throughput",
        "rows": [
            {"label": "interp-idle", "engine": "interp",
             "steps_per_sec": interp},
            {"label": "blocks-idle", "engine": "blocks",
             "steps_per_sec": blocks},
        ],
    }


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return path


class TestCompare:
    def test_no_regression_when_identical(self):
        rates = {"interp": 100.0, "blocks": 1000.0}
        assert compare_bench.compare(rates, dict(rates), 0.30) == []

    def test_normalized_mode_ignores_machine_speed(self):
        # Half-speed machine, same relative speedup: not a regression.
        baseline = {"interp": 100.0, "blocks": 1000.0}
        current = {"interp": 50.0, "blocks": 500.0}
        assert compare_bench.compare(baseline, current, 0.30) == []

    def test_normalized_mode_catches_speedup_collapse(self):
        # Same absolute interp rate but the blocks speedup fell 10x.
        baseline = {"interp": 100.0, "blocks": 1000.0}
        current = {"interp": 100.0, "blocks": 100.0}
        regressions = compare_bench.compare(baseline, current, 0.30)
        assert [engine for engine, _, _ in regressions] == ["blocks"]

    def test_absolute_mode_catches_uniform_slowdown(self):
        baseline = {"interp": 100.0, "blocks": 1000.0}
        current = {"interp": 50.0, "blocks": 500.0}
        regressions = compare_bench.compare(baseline, current, 0.30,
                                            absolute=True)
        assert [engine for engine, _, _ in regressions] \
            == ["blocks", "interp"]

    def test_drop_within_threshold_passes(self):
        baseline = {"interp": 100.0, "blocks": 1000.0}
        current = {"interp": 100.0, "blocks": 750.0}  # -25% < 30%
        assert compare_bench.compare(baseline, current, 0.30) == []

    def test_dropped_row_is_a_regression(self):
        baseline = {"interp": 100.0, "blocks": 1000.0}
        regressions = compare_bench.compare(baseline, {"interp": 100.0}, 0.30)
        assert regressions == [("blocks", 10.0, None)]

    def test_normalize_requires_reference_row(self):
        with pytest.raises(SystemExit):
            compare_bench.normalize({"blocks": 1000.0})


class TestMain:
    def test_exit_zero_when_clean(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", _payload(100.0, 1000.0))
        current = _write(tmp_path / "cur.json", _payload(90.0, 950.0))
        code = compare_bench.main([
            "--baseline", str(baseline), "--current", str(current)])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", _payload(100.0, 1000.0))
        current = _write(tmp_path / "cur.json", _payload(100.0, 100.0))
        code = compare_bench.main([
            "--baseline", str(baseline), "--current", str(current)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_current_file_exits_nonzero(self, tmp_path):
        baseline = _write(tmp_path / "base.json", _payload(100.0, 1000.0))
        with pytest.raises(SystemExit):
            compare_bench.main([
                "--baseline", str(baseline),
                "--current", str(tmp_path / "missing.json")])

    def test_bad_threshold_rejected(self, tmp_path):
        baseline = _write(tmp_path / "base.json", _payload(100.0, 1000.0))
        with pytest.raises(SystemExit):
            compare_bench.main([
                "--baseline", str(baseline), "--current", str(baseline),
                "--threshold", "1.5"])

    def test_committed_baseline_is_loadable(self):
        rates = compare_bench.load_rates(compare_bench.DEFAULT_BASELINE)
        assert "interp" in rates and "blocks" in rates

    def test_committed_baseline_has_labeled_workload_rows(self):
        profile = compare_bench.PROFILES["sim"]
        assert profile["reference"] == "interp-idle"
        rates = compare_bench.load_rates(
            compare_bench.DEFAULT_BASELINE,
            key=profile["key"], value=profile["value"])
        for label in ("interp-idle", "blocks-idle",
                      "interp-memloop", "blocks-memloop",
                      "interp-attest", "blocks-attest"):
            assert label in rates, label


def _fleet_payload(loopback1, cluster2):
    return {
        "benchmark": "fleet_exchanges_per_second",
        "rows": [
            {"label": "loopback-1", "exchanges_per_sec": loopback1},
            {"label": "cluster-2", "exchanges_per_sec": cluster2},
        ],
    }


class TestFleetProfile:
    def test_profile_table_is_well_formed(self):
        for profile in compare_bench.PROFILES.values():
            assert {"baseline", "current", "key", "value", "reference"} \
                <= set(profile)

    def test_fleet_rows_load_by_label(self, tmp_path):
        path = _write(tmp_path / "fleet.json", _fleet_payload(100.0, 260.0))
        rates = compare_bench.load_rates(path, key="label",
                                         value="exchanges_per_sec")
        assert rates == {"loopback-1": 100.0, "cluster-2": 260.0}

    def test_fleet_normalizes_to_loopback_1(self):
        rates = {"loopback-1": 100.0, "cluster-2": 260.0}
        normalized = compare_bench.normalize(rates, reference="loopback-1")
        assert normalized == {"loopback-1": 1.0, "cluster-2": 2.6}

    def test_fleet_gate_catches_scaling_collapse(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", _fleet_payload(100.0, 260.0))
        # Same absolute loopback rate, but the cluster speedup halved.
        current = _write(tmp_path / "cur.json", _fleet_payload(100.0, 130.0))
        code = compare_bench.main([
            "--profile", "fleet",
            "--baseline", str(baseline), "--current", str(current)])
        assert code == 1
        assert "cluster-2" in capsys.readouterr().out

    def test_fleet_gate_ignores_uniform_machine_speed(self, tmp_path, capsys):
        baseline = _write(tmp_path / "base.json", _fleet_payload(100.0, 260.0))
        current = _write(tmp_path / "cur.json", _fleet_payload(50.0, 130.0))
        code = compare_bench.main([
            "--profile", "fleet",
            "--baseline", str(baseline), "--current", str(current)])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_committed_fleet_baseline_matches_profile(self):
        profile = compare_bench.PROFILES["fleet"]
        path = _SCRIPT.parent / profile["baseline"]
        rates = compare_bench.load_rates(path, key=profile["key"],
                                         value=profile["value"])
        assert profile["reference"] in rates
        assert "cluster-1" in rates and "cluster-2" in rates


class TestAttestAndCampaignProfiles:
    def test_committed_attest_baseline_matches_profile(self):
        profile = compare_bench.PROFILES["attest"]
        rates = compare_bench.load_rates(
            _SCRIPT.parent / profile["baseline"],
            key=profile["key"], value=profile["value"])
        assert profile["reference"] in rates
        assert {"pure-256B", "pure-64KiB", "fast-256B", "fast-64KiB"} \
            <= set(rates)

    def test_committed_campaign_baseline_matches_profile(self):
        profile = compare_bench.PROFILES["campaign"]
        rates = compare_bench.load_rates(
            _SCRIPT.parent / profile["baseline"],
            key=profile["key"], value=profile["value"])
        assert profile["reference"] in rates
        assert {"serial-1", "store-cold", "store-warm"} <= set(rates)
        # The whole point of the store: the committed warm-run row must
        # dominate the cold one by a wide margin.
        assert rates["store-warm"] > 5 * rates["store-cold"]

    def test_campaign_gate_catches_store_speedup_collapse(self, tmp_path,
                                                          capsys):
        def payload(warm):
            return {"rows": [
                {"label": "serial-1", "scenarios_per_sec": 100.0},
                {"label": "store-warm", "scenarios_per_sec": warm},
            ]}
        baseline = _write(tmp_path / "base.json", payload(2000.0))
        current = _write(tmp_path / "cur.json", payload(150.0))
        code = compare_bench.main([
            "--profile", "campaign",
            "--baseline", str(baseline), "--current", str(current)])
        assert code == 1
        assert "store-warm" in capsys.readouterr().out

    def test_attest_gate_ignores_machine_speed(self, tmp_path, capsys):
        def payload(scale):
            return {"rows": [
                {"label": "pure-64KiB", "reports_per_sec": 2.0 * scale},
                {"label": "fast-64KiB", "reports_per_sec": 4000.0 * scale},
            ]}
        baseline = _write(tmp_path / "base.json", payload(1.0))
        current = _write(tmp_path / "cur.json", payload(0.25))
        code = compare_bench.main([
            "--profile", "attest",
            "--baseline", str(baseline), "--current", str(current)])
        assert code == 0
        assert "OK" in capsys.readouterr().out