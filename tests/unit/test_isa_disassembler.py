"""Unit tests for the disassembler."""

from repro.isa.assembler import Assembler
from repro.isa.disassembler import disassemble_range, disassemble_word
from repro.isa.encoding import encode_instruction
from repro.isa.instructions import Instruction, Opcode, Operand
from repro.memory.memory import Memory


class TestDisassembleWord:
    def test_simple_instruction(self):
        words = encode_instruction(
            Instruction(Opcode.MOV, src=Operand.reg(4), dst=Operand.reg(5))
        )
        text, consumed = disassemble_word(list(words))
        assert text == "MOV R4, R5"
        assert consumed == 1

    def test_instruction_with_extension(self):
        words = encode_instruction(
            Instruction(Opcode.MOV, src=Operand.imm(0x1234), dst=Operand.reg(5))
        )
        text, consumed = disassemble_word(list(words))
        assert "0x1234" in text
        assert consumed == 2

    def test_undecodable_word_renders_as_data(self):
        text, consumed = disassemble_word([0x0000])
        assert text == ".word 0x0000"
        assert consumed == 1


class TestDisassembleRange:
    def test_round_trip_through_memory(self):
        source = """
    .section .text
    MOV #0x1234, R5
    INC R5
    JMP 0xE000
"""
        image = Assembler().assemble(source, section_addresses={".text": 0xE000})
        memory = Memory()
        image.write_to(memory)
        listing = disassemble_range(memory, 0xE000, 0xE000 + image.total_size())
        assert listing[0][0] == 0xE000
        assert "MOV" in listing[0][1]
        assert any("ADD" in text for _, text in listing)  # INC expands to ADD
        assert len(listing) == 3

    def test_empty_range(self):
        assert disassemble_range(Memory(), 0xE000, 0xE000) == []
