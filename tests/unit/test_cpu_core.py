"""Unit tests for the CPU core: arithmetic, control flow and interrupts."""

import pytest

from repro.cpu.core import CPU, CPUError
from repro.cpu.signals import SignalBundle
from repro.isa.assembler import Assembler
from repro.isa.registers import SP, SR, StatusFlag
from repro.memory.ivt import InterruptVectorTable
from repro.memory.memory import Memory


def make_cpu(source, base=0xE000, stack_top=0x1200):
    """Assemble *source* into memory at *base* and return a ready CPU."""
    memory = Memory()
    image = Assembler().assemble(
        ".section .text\n" + source, section_addresses={".text": base}
    )
    image.write_to(memory)
    ivt = InterruptVectorTable(memory)
    ivt.set_reset_vector(base)
    cpu = CPU(memory, ivt)
    cpu.reset(stack_top=stack_top)
    return cpu, memory


def run_steps(cpu, count):
    bundles = []
    for _ in range(count):
        bundles.append(cpu.step().bundle)
    return bundles


class TestArithmetic:
    def test_mov_and_add(self):
        cpu, _ = make_cpu("MOV #5, R6\nADD #3, R6\n")
        run_steps(cpu, 2)
        assert cpu.registers[6] == 8

    def test_sub_sets_zero_flag(self):
        cpu, _ = make_cpu("MOV #7, R6\nSUB #7, R6\n")
        run_steps(cpu, 2)
        assert cpu.registers[6] == 0
        assert cpu.flag(StatusFlag.Z)
        assert cpu.flag(StatusFlag.C)  # no borrow

    def test_sub_borrow_clears_carry(self):
        cpu, _ = make_cpu("MOV #3, R6\nSUB #5, R6\n")
        run_steps(cpu, 2)
        assert cpu.registers[6] == 0xFFFE
        assert not cpu.flag(StatusFlag.C)
        assert cpu.flag(StatusFlag.N)

    def test_add_carry_and_overflow(self):
        cpu, _ = make_cpu("MOV #0xFFFF, R6\nADD #1, R6\n")
        run_steps(cpu, 2)
        assert cpu.registers[6] == 0
        assert cpu.flag(StatusFlag.C)
        assert not cpu.flag(StatusFlag.V)

    def test_signed_overflow(self):
        cpu, _ = make_cpu("MOV #0x7FFF, R6\nADD #1, R6\n")
        run_steps(cpu, 2)
        assert cpu.registers[6] == 0x8000
        assert cpu.flag(StatusFlag.V)
        assert cpu.flag(StatusFlag.N)

    def test_addc_uses_carry(self):
        cpu, _ = make_cpu(
            "MOV #0xFFFF, R6\nADD #1, R6\nMOV #10, R7\nADDC #0, R7\n"
        )
        run_steps(cpu, 4)
        assert cpu.registers[7] == 11

    def test_and_bit_bis_bic_xor(self):
        cpu, _ = make_cpu(
            "MOV #0x00FF, R6\n"
            "AND #0x0F0F, R6\n"      # 0x000F
            "BIS #0x0030, R6\n"      # 0x003F
            "BIC #0x0007, R6\n"      # 0x0038
            "XOR #0x00FF, R6\n"      # 0x00C7
        )
        run_steps(cpu, 5)
        assert cpu.registers[6] == 0x00C7

    def test_bit_sets_flags_without_writing(self):
        cpu, _ = make_cpu("MOV #0x0F, R6\nBIT #0x10, R6\n")
        run_steps(cpu, 2)
        assert cpu.registers[6] == 0x0F
        assert cpu.flag(StatusFlag.Z)

    def test_cmp_does_not_write(self):
        cpu, _ = make_cpu("MOV #9, R6\nCMP #9, R6\n")
        run_steps(cpu, 2)
        assert cpu.registers[6] == 9
        assert cpu.flag(StatusFlag.Z)

    def test_dadd_decimal_addition(self):
        cpu, _ = make_cpu("MOV #0x0019, R6\nCLR R7\nDADD #0x0003, R6\n")
        run_steps(cpu, 3)
        assert cpu.registers[6] == 0x0022  # 19 + 3 = 22 in BCD

    def test_byte_mode_clears_high_byte_of_register(self):
        cpu, _ = make_cpu("MOV #0x1234, R6\nMOV.B #0x56, R6\n")
        run_steps(cpu, 2)
        assert cpu.registers[6] == 0x0056

    def test_swpb(self):
        cpu, _ = make_cpu("MOV #0x1234, R6\nSWPB R6\n")
        run_steps(cpu, 2)
        assert cpu.registers[6] == 0x3412

    def test_sxt(self):
        cpu, _ = make_cpu("MOV #0x0080, R6\nSXT R6\n")
        run_steps(cpu, 2)
        assert cpu.registers[6] == 0xFF80

    def test_rra_and_rrc(self):
        cpu, _ = make_cpu("MOV #0x8002, R6\nRRA R6\nMOV #0x0001, R7\nRRC R7\n")
        run_steps(cpu, 2)
        assert cpu.registers[6] == 0xC001  # arithmetic shift keeps the sign
        run_steps(cpu, 2)
        # carry was 0 after RRA of ...0 -> wait: RRA shifted out bit0=0, so C=0
        assert cpu.registers[7] in (0x0000, 0x8000)


class TestMemoryOperands:
    def test_absolute_store_and_load(self):
        cpu, memory = make_cpu("MOV #0xBEEF, &0x0300\nMOV &0x0300, R9\n")
        run_steps(cpu, 2)
        assert memory.peek_word(0x0300) == 0xBEEF
        assert cpu.registers[9] == 0xBEEF

    def test_indexed_addressing(self):
        cpu, memory = make_cpu(
            "MOV #0x0300, R4\nMOV #0x1111, 2(R4)\nMOV 2(R4), R5\n"
        )
        run_steps(cpu, 3)
        assert memory.peek_word(0x0302) == 0x1111
        assert cpu.registers[5] == 0x1111

    def test_indirect_autoincrement(self):
        cpu, memory = make_cpu(
            "MOV #0x1111, &0x0300\n"
            "MOV #0x2222, &0x0302\n"
            "MOV #0x0300, R4\n"
            "MOV @R4+, R5\n"
            "MOV @R4+, R6\n"
        )
        run_steps(cpu, 5)
        assert cpu.registers[5] == 0x1111
        assert cpu.registers[6] == 0x2222
        assert cpu.registers[4] == 0x0304

    def test_byte_autoincrement_advances_by_one(self):
        cpu, _ = make_cpu(
            "MOV #0x0300, R4\nMOV.B @R4+, R5\nMOV.B @R4+, R6\n"
        )
        run_steps(cpu, 3)
        assert cpu.registers[4] == 0x0302

    def test_write_signals_reported(self):
        cpu, _ = make_cpu("MOV #0xAA, &0x0310\n")
        bundle = cpu.step().bundle
        assert bundle.wen
        assert 0x0310 in bundle.write_addresses

    def test_read_signals_reported(self):
        cpu, _ = make_cpu("MOV &0x0310, R5\n")
        bundle = cpu.step().bundle
        assert 0x0310 in bundle.read_addresses


class TestControlFlow:
    def test_conditional_loop(self):
        cpu, _ = make_cpu(
            "MOV #0, R6\nloop:\nINC R6\nCMP #5, R6\nJNE loop\nNOP\n"
        )
        for _ in range(40):
            cpu.step()
            if cpu.registers[6] == 5 and cpu.flag(StatusFlag.Z):
                break
        assert cpu.registers[6] == 5

    def test_jmp_is_unconditional(self):
        cpu, _ = make_cpu("JMP target\nMOV #1, R6\ntarget:\nMOV #2, R6\n")
        run_steps(cpu, 2)
        assert cpu.registers[6] == 2

    def test_call_and_ret(self):
        cpu, _ = make_cpu(
            "CALL #subroutine\nMOV #1, R7\nJMP end\n"
            "subroutine:\nMOV #9, R6\nRET\n"
            "end:\nNOP\n"
        )
        run_steps(cpu, 5)
        assert cpu.registers[6] == 9
        assert cpu.registers[7] == 1

    def test_call_pushes_return_address(self):
        cpu, memory = make_cpu("CALL #subroutine\nNOP\nsubroutine:\nRET\n")
        initial_sp = cpu.sp
        cpu.step()
        assert cpu.sp == initial_sp - 2
        assert memory.peek_word(cpu.sp) == 0xE004

    def test_push_pop(self):
        cpu, _ = make_cpu("MOV #0x1234, R6\nPUSH R6\nCLR R6\nPOP R7\n")
        run_steps(cpu, 4)
        assert cpu.registers[7] == 0x1234

    def test_br_sets_pc(self):
        cpu, _ = make_cpu("BR #target\nMOV #1, R6\ntarget:\nMOV #2, R6\n")
        run_steps(cpu, 2)
        assert cpu.registers[6] == 2

    def test_jge_jl_signed_comparison(self):
        cpu, _ = make_cpu(
            "MOV #0xFFFE, R6\nCMP #1, R6\nJL lower\nMOV #1, R7\nJMP end\n"
            "lower:\nMOV #2, R7\nend:\nNOP\n"
        )
        run_steps(cpu, 5)
        assert cpu.registers[7] == 2  # -2 < 1 signed


class TestStatusRegisterAndSleep:
    def test_dint_eint(self):
        cpu, _ = make_cpu("EINT\nDINT\n")
        cpu.step()
        assert cpu.interrupts_enabled
        cpu.step()
        assert not cpu.interrupts_enabled

    def test_cpuoff_makes_cpu_idle(self):
        cpu, _ = make_cpu("BIS #0x10, SR\nMOV #1, R6\n")
        cpu.step()
        assert cpu.sleeping
        result = cpu.step()
        assert result.idle
        assert cpu.registers[6] == 0  # the MOV did not execute

    def test_illegal_instruction_raises(self):
        memory = Memory()
        ivt = InterruptVectorTable(memory)
        ivt.set_reset_vector(0xE000)
        cpu = CPU(memory, ivt)
        cpu.reset(stack_top=0x1200)
        with pytest.raises(CPUError):
            cpu.step()


class TestInterruptHandling:
    def build(self):
        source = (
            "EINT\n"
            "main_loop:\n"
            "INC R6\n"
            "JMP main_loop\n"
            "isr:\n"
            "INC R10\n"
            "RETI\n"
        )
        cpu, memory = make_cpu(source)
        isr_address = 0xE000 + 2 + 2 + 2  # EINT + INC + JMP
        cpu.ivt.set_vector(2, isr_address)
        return cpu, memory, isr_address

    def test_interrupt_entry_and_return(self):
        cpu, memory, isr_address = self.build()
        run_steps(cpu, 3)
        result = cpu.step(pending_interrupt=2)
        bundle = result.bundle
        assert bundle.irq
        assert bundle.irq_source == 2
        assert result.serviced_interrupt == 2
        assert cpu.pc == isr_address
        assert not cpu.interrupts_enabled  # GIE cleared on entry
        run_steps(cpu, 2)  # INC R10 ; RETI
        assert cpu.registers[10] == 1
        assert cpu.interrupts_enabled  # restored from stacked SR

    def test_interrupt_pushes_pc_and_sr(self):
        cpu, memory, _ = self.build()
        run_steps(cpu, 1)
        sp_before = cpu.sp
        interrupted_pc = cpu.pc
        sr_before = cpu.sr
        cpu.step(pending_interrupt=2)
        assert cpu.sp == sp_before - 4
        assert memory.peek_word(sp_before - 2) == interrupted_pc
        assert memory.peek_word(sp_before - 4) == sr_before

    def test_interrupt_ignored_when_gie_clear(self):
        cpu, _, _ = self.build()
        # Do not execute EINT yet: GIE is clear at reset.
        result = cpu.step(pending_interrupt=2)
        assert not result.bundle.irq
        assert result.serviced_interrupt is None

    def test_interrupt_wakes_sleeping_cpu(self):
        source = (
            "BIS #0x18, SR\n"    # GIE + CPUOFF
            "MOV #7, R6\n"
            "isr:\n"
            "BIC #0x10, 0(SP)\n"  # clear CPUOFF in the stacked SR
            "RETI\n"
        )
        cpu, _ = make_cpu(source)
        # BIS #0x18 (4 bytes) + MOV #7 (4 bytes) put the ISR at +8.
        cpu.ivt.set_vector(9, 0xE000 + 8)
        cpu.step()           # go to sleep
        assert cpu.sleeping
        cpu.step()           # idle
        cpu.step(pending_interrupt=9)
        assert not cpu.sleeping
        run_steps(cpu, 2)    # BIC ; RETI
        assert not cpu.sleeping
        cpu.step()           # MOV #7, R6 now runs
        assert cpu.registers[6] == 7

    def test_reti_restores_sleep_if_not_cleared(self):
        source = (
            "BIS #0x18, SR\n"
            "MOV #7, R6\n"
            "isr:\n"
            "RETI\n"
        )
        cpu, _ = make_cpu(source)
        cpu.ivt.set_vector(9, 0xE000 + 8)
        cpu.step()
        cpu.step(pending_interrupt=9)
        cpu.step()  # RETI restores the stacked SR, CPUOFF still set
        assert cpu.sleeping


class TestCycleAccounting:
    def test_cycles_accumulate(self):
        cpu, _ = make_cpu("MOV #5, R6\nADD #3, R6\nNOP\n")
        run_steps(cpu, 3)
        assert cpu.cycle_count >= 3
        assert cpu.step_count == 3

    def test_interrupt_entry_costs_six_cycles(self):
        cpu, _, _ = TestInterruptHandling().build()
        run_steps(cpu, 1)
        before = cpu.cycle_count
        cpu.step(pending_interrupt=2)
        assert cpu.cycle_count - before == 6
