"""Unit tests for the APEX layer: regions, the EXEC monitor and the PoX
protocol plumbing."""

import pytest

from repro.apex.hwmod import ApexMonitor
from repro.apex.pox import PoxProtocol, PoxVerifier
from repro.apex.regions import (
    ExecutableRegion,
    MetadataRegion,
    OutputRegion,
    PoxConfig,
)
from repro.cpu.signals import MemoryWrite, SignalBundle
from repro.memory.layout import MemoryLayout, MemoryRegion
from repro.memory.memory import Memory


ER_MIN = 0xE000
ER_MAX = 0xE07E


def bundle(pc, next_pc=None, irq=False, writes=(), dma_writes=(), cycle=1):
    return SignalBundle(
        cycle=cycle,
        pc=pc,
        next_pc=pc + 2 if next_pc is None else next_pc,
        irq=irq,
        dma_en=bool(dma_writes),
        writes=[MemoryWrite(address, 0, 2) for address in writes],
        dma_writes=[MemoryWrite(address, 0, 2) for address in dma_writes],
    )


@pytest.fixture
def monitor(pox_config):
    return ApexMonitor(pox_config)


class TestExecutableRegion:
    def test_entry_exit_must_lie_inside(self):
        with pytest.raises(ValueError):
            ExecutableRegion.spanning(0xE000, 0xE07F, entry=0xD000)
        with pytest.raises(ValueError):
            ExecutableRegion.spanning(0xE000, 0xE07F, exit=0xF000)

    def test_isr_entries_must_lie_inside(self):
        with pytest.raises(ValueError):
            ExecutableRegion.spanning(0xE000, 0xE07F, isr_entries={2: 0xA000})

    def test_properties(self):
        er = ExecutableRegion.spanning(0xE000, 0xE07F, entry=0xE000, exit=0xE07E,
                                       isr_entries={2: 0xE020})
        assert er.er_min == 0xE000
        assert er.er_max == 0xE07E
        assert er.contains(0xE020)
        assert not er.contains(0xE080)


class TestMetadataRegion:
    def test_write_and_read_back(self):
        memory = Memory()
        metadata = MetadataRegion.at(0x0400)
        er = ExecutableRegion.spanning(ER_MIN, 0xE07F, exit=ER_MAX)
        output = OutputRegion.spanning(0x0600, 0x063F)
        challenge = bytes(range(32))
        metadata.write(memory, challenge, er, output)
        assert metadata.read_challenge(memory) == challenge
        assert metadata.read_params(memory) == (ER_MIN, ER_MAX, 0x0600, 0x063F)

    def test_challenge_length_enforced(self):
        memory = Memory()
        metadata = MetadataRegion.at(0x0400)
        er = ExecutableRegion.spanning(ER_MIN, 0xE07F)
        output = OutputRegion.spanning(0x0600, 0x063F)
        with pytest.raises(ValueError):
            metadata.write(memory, b"short", er, output)

    def test_region_size(self):
        assert MetadataRegion.at(0x0400).region.size == 40


class TestPoxConfig:
    def test_valid_geometry(self, pox_config):
        pox_config.validate_against(MemoryLayout.default())

    def test_er_must_be_in_program_memory(self):
        config = PoxConfig(
            executable=ExecutableRegion.spanning(0x0300, 0x03FF),
            output=OutputRegion.spanning(0x0600, 0x063F),
            metadata=MetadataRegion.at(0x0400),
        )
        with pytest.raises(ValueError):
            config.validate_against(MemoryLayout.default())

    def test_or_and_metadata_must_not_overlap(self):
        config = PoxConfig(
            executable=ExecutableRegion.spanning(0xE000, 0xE0FF),
            output=OutputRegion.spanning(0x0400, 0x043F),
            metadata=MetadataRegion.at(0x0400),
        )
        with pytest.raises(ValueError):
            config.validate_against(MemoryLayout.default())

    def test_measured_regions_order(self, pox_config):
        regions = pox_config.measured_regions()
        assert regions[0] is pox_config.metadata.region
        assert regions[1] is pox_config.executable.region
        assert regions[2] is pox_config.output.region


class TestApexMonitorControlFlow:
    def test_exec_rises_at_er_min(self, monitor):
        assert not monitor.exec_flag
        monitor.observe(bundle(ER_MIN))
        assert monitor.exec_flag
        assert monitor.execution_started

    def test_exec_does_not_rise_elsewhere(self, monitor):
        monitor.observe(bundle(0xC000))
        monitor.observe(bundle(ER_MIN + 10))
        assert not monitor.exec_flag

    def test_ltl1_illegal_exit_clears_exec(self, monitor):
        monitor.observe(bundle(ER_MIN))
        monitor.observe(bundle(ER_MIN + 10, next_pc=0xC000))
        assert not monitor.exec_flag
        assert monitor.violations_for("ltl1-exit")

    def test_legal_exit_through_er_max_keeps_exec(self, monitor):
        monitor.observe(bundle(ER_MIN))
        monitor.observe(bundle(ER_MAX, next_pc=0xC000))
        assert monitor.exec_flag
        assert monitor.execution_completed

    def test_ltl2_illegal_entry_clears_exec(self, monitor):
        monitor.observe(bundle(ER_MIN))
        monitor.observe(bundle(ER_MAX, next_pc=0xC000))
        monitor.observe(bundle(0xC000, next_pc=ER_MIN + 8))
        assert not monitor.exec_flag
        assert monitor.violations_for("ltl2-entry")

    def test_legal_reentry_at_er_min(self, monitor):
        monitor.observe(bundle(0xC000, next_pc=ER_MIN))
        monitor.observe(bundle(ER_MIN))
        assert monitor.exec_flag
        assert not monitor.violated

    def test_ltl3_interrupt_during_er_clears_exec(self, monitor):
        monitor.observe(bundle(ER_MIN))
        monitor.observe(bundle(ER_MIN + 4, next_pc=ER_MIN + 20, irq=True))
        assert not monitor.exec_flag
        assert monitor.violations_for("ltl3-interrupt")

    def test_interrupt_outside_er_is_ignored(self, monitor):
        monitor.observe(bundle(0xC000, irq=True))
        assert not monitor.violations_for("ltl3-interrupt")

    def test_exec_value_helper(self, monitor):
        assert monitor.exec_value() == 0
        monitor.observe(bundle(ER_MIN))
        assert monitor.exec_value() == 1

    def test_signal_values_exported(self, monitor):
        monitor.observe(bundle(ER_MIN))
        values = monitor.signal_values()
        assert values["EXEC"] == 1
        assert values["PC_in_ER"] == 1


class TestApexMonitorMemoryRules:
    def test_write_into_er_clears_exec(self, monitor, pox_config):
        monitor.observe(bundle(ER_MIN))
        monitor.observe(bundle(0xC000, writes=[pox_config.executable.region.start + 4]))
        assert not monitor.exec_flag
        assert monitor.violations_for("er-modified")

    def test_dma_write_into_er_clears_exec(self, monitor, pox_config):
        monitor.observe(bundle(ER_MIN))
        monitor.observe(bundle(0xC000, dma_writes=[pox_config.executable.region.start]))
        assert monitor.violations_for("er-modified")

    def test_or_write_from_outside_er_clears_exec(self, monitor, pox_config):
        monitor.observe(bundle(ER_MIN))
        monitor.observe(bundle(0xC000, writes=[pox_config.output.region.start]))
        assert monitor.violations_for("or-modified")

    def test_or_write_from_inside_er_is_allowed(self, monitor, pox_config):
        monitor.observe(bundle(ER_MIN))
        monitor.observe(bundle(ER_MIN + 4, writes=[pox_config.output.region.start]))
        assert monitor.exec_flag
        assert not monitor.violated

    def test_dma_write_into_or_always_clears_exec(self, monitor, pox_config):
        monitor.observe(bundle(ER_MIN))
        monitor.observe(bundle(ER_MIN + 4, dma_writes=[pox_config.output.region.start]))
        assert monitor.violations_for("or-dma")

    def test_metadata_write_clears_exec(self, monitor, pox_config):
        monitor.observe(bundle(ER_MIN))
        monitor.observe(bundle(0xC000, writes=[pox_config.metadata.region.start]))
        assert monitor.violations_for("metadata-modified")

    def test_dma_during_er_execution_clears_exec(self, monitor, pox_config):
        monitor.observe(bundle(ER_MIN))
        monitor.observe(bundle(ER_MIN + 4, dma_writes=[0x0800]))
        assert monitor.violations_for("dma-during-er")

    def test_reset_restores_monitor(self, monitor):
        monitor.observe(bundle(ER_MIN))
        monitor.observe(bundle(ER_MIN + 4, next_pc=0xC000))
        assert monitor.violated
        monitor.reset()
        assert not monitor.violated and not monitor.exec_flag

    def test_first_violation_ordering(self, monitor, pox_config):
        monitor.observe(bundle(ER_MIN))
        monitor.observe(bundle(0xC000, writes=[pox_config.executable.region.start],
                               cycle=7))
        first = monitor.first_violation()
        assert first is not None and first.rule == "er-modified"


class TestPoxVerifierPlumbing:
    def test_unknown_device_rejected(self):
        verifier = PoxVerifier()
        from repro.vrased.swatt import AttestationReport
        report = AttestationReport(device_id="ghost", challenge=b"\x00" * 32,
                                   measurement=b"\x00" * 32)
        result = verifier.verify(report)
        assert not result.accepted
        assert "unknown device" in result.reason

    def test_missing_output_snapshot_rejected(self, pox_config):
        verifier = PoxVerifier()
        verifier.enroll("dev")
        verifier.register_deployment("dev", pox_config, b"\x00" * pox_config.executable.region.size)
        from repro.vrased.swatt import AttestationReport
        report = AttestationReport(device_id="dev", challenge=b"\x00" * 32,
                                   measurement=b"\x00" * 32, claims={"EXEC": 1})
        result = verifier.verify(report)
        assert not result.accepted
        assert "output" in result.reason

    def test_expected_metadata_layout(self, pox_config):
        verifier = PoxVerifier()
        verifier.enroll("dev")
        verifier.register_deployment("dev", pox_config, b"\x00" * pox_config.executable.region.size)
        challenge = bytes(range(32))
        metadata = verifier.expected_metadata("dev", challenge)
        assert metadata[:32] == challenge
        assert len(metadata) == 40

    def test_structural_rejection_burns_the_challenge(self):
        # A report rejected *before* the measurement check (here: output
        # snapshot stripped) is just as terminal: the challenge must be
        # consumed, or an attacker could probe with malformed reports
        # and replay the intact one later.
        from dataclasses import replace

        from repro.firmware.blinker import blinker_firmware
        from repro.firmware.testbench import PoxTestbench, TestbenchConfig

        bench = PoxTestbench(blinker_firmware(authorized=True),
                             TestbenchConfig(architecture="apex"))
        bench.protocol.deliver_challenge()
        bench.protocol.call_executable()
        report = bench.protocol.attest()
        stripped = replace(report, snapshots={})
        rejected = bench.protocol.verify(stripped)
        assert not rejected.accepted and "output" in rejected.reason
        assert bench.pox_verifier.verifier.issued_count() == 0  # burned
        replayed = bench.protocol.verify(report)
        assert not replayed.accepted
        assert "challenge" in replayed.reason

    def test_unknown_device_rejection_burns_the_challenge(self, pox_config):
        from repro.vrased.swatt import AttestationReport

        verifier = PoxVerifier()
        verifier.enroll("dev")
        verifier.register_deployment(
            "dev", pox_config, b"\x00" * pox_config.executable.region.size)
        request = verifier.create_request("dev")
        ghost = AttestationReport(device_id="ghost", challenge=request.challenge,
                                  measurement=b"\x00" * 32)
        assert not verifier.verify(ghost).accepted
        assert verifier.verifier.issued_count() == 0
