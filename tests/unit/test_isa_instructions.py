"""Unit tests for instruction and operand data types."""

import pytest

from repro.isa.instructions import (
    AddressingMode,
    CONSTANT_GENERATOR_ENCODINGS,
    Instruction,
    InstructionFormat,
    Opcode,
    Operand,
)


class TestOperandConstructors:
    def test_register_shorthand(self):
        operand = Operand.reg(5)
        assert operand.mode is AddressingMode.REGISTER
        assert operand.register == 5

    def test_immediate_uses_constant_generator(self):
        for value in (0, 1, 2, 4, 8, 0xFFFF):
            assert Operand.imm(value).mode is AddressingMode.CONSTANT

    def test_immediate_general_value(self):
        operand = Operand.imm(0x1234)
        assert operand.mode is AddressingMode.IMMEDIATE
        assert operand.value == 0x1234

    def test_immediate_negative_one_is_constant(self):
        assert Operand.imm(-1).mode is AddressingMode.CONSTANT

    def test_absolute(self):
        operand = Operand.absolute(0x0200)
        assert operand.mode is AddressingMode.ABSOLUTE
        assert operand.value == 0x0200

    def test_indexed(self):
        operand = Operand.indexed(4, 6)
        assert operand.mode is AddressingMode.INDEXED
        assert operand.register == 4
        assert operand.value == 6

    def test_indirect_and_autoincrement(self):
        assert Operand.indirect(5).mode is AddressingMode.INDIRECT
        assert Operand.indirect(5, autoincrement=True).mode is AddressingMode.AUTOINCREMENT


class TestOperandExtensionWords:
    def test_register_has_no_extension(self):
        assert not Operand.reg(4).needs_extension_word()
        assert not Operand.imm(1).needs_extension_word()
        assert not Operand.indirect(4).needs_extension_word()

    def test_memory_modes_need_extension(self):
        assert Operand.imm(0x1234).needs_extension_word()
        assert Operand.absolute(0x200).needs_extension_word()
        assert Operand.indexed(4, 2).needs_extension_word()


class TestOperandRendering:
    def test_render_register(self):
        assert Operand.reg(0).render() == "PC"
        assert Operand.reg(9).render() == "R9"

    def test_render_immediate_and_constant(self):
        assert Operand.imm(0x1234).render() == "#0x1234"
        assert Operand.imm(1).render() == "#1"
        assert Operand.imm(-1).render() == "#-1"

    def test_render_memory_modes(self):
        assert Operand.absolute(0x200).render() == "&0x0200"
        assert Operand.indexed(4, 6).render() == "6(R4)"
        assert Operand.indirect(5).render() == "@R5"
        assert Operand.indirect(5, True).render() == "@R5+"


class TestConstantGenerator:
    def test_all_six_constants_encoded(self):
        assert set(CONSTANT_GENERATOR_ENCODINGS) == {0, 1, 2, 4, 8, 0xFFFF}

    def test_encodings_use_r2_r3(self):
        for register, _as_bits in CONSTANT_GENERATOR_ENCODINGS.values():
            assert register in (2, 3)


class TestInstructionValidation:
    def test_double_operand_requires_both(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.MOV, src=Operand.reg(4))

    def test_single_operand_requires_src(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.PUSH)

    def test_reti_needs_no_operand(self):
        assert Instruction(Opcode.RETI).format is InstructionFormat.SINGLE_OPERAND

    def test_jump_offset_must_be_even(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.JMP, jump_offset=3)

    def test_jump_offset_range(self):
        Instruction(Opcode.JMP, jump_offset=-1024)
        Instruction(Opcode.JMP, jump_offset=1022)
        with pytest.raises(ValueError):
            Instruction(Opcode.JMP, jump_offset=1024)
        with pytest.raises(ValueError):
            Instruction(Opcode.JMP, jump_offset=-1026)


class TestInstructionSizes:
    def test_register_to_register_is_one_word(self):
        instruction = Instruction(Opcode.MOV, src=Operand.reg(4), dst=Operand.reg(5))
        assert instruction.size_words() == 1
        assert instruction.size_bytes() == 2

    def test_immediate_to_absolute_is_three_words(self):
        instruction = Instruction(
            Opcode.MOV, src=Operand.imm(0x1234), dst=Operand.absolute(0x0200)
        )
        assert instruction.size_words() == 3

    def test_constant_to_register_is_one_word(self):
        instruction = Instruction(Opcode.ADD, src=Operand.imm(1), dst=Operand.reg(6))
        assert instruction.size_words() == 1

    def test_jump_is_one_word(self):
        assert Instruction(Opcode.JNE, jump_offset=-4).size_words() == 1


class TestInstructionCycles:
    def test_register_mov_is_cheap(self):
        instruction = Instruction(Opcode.MOV, src=Operand.reg(4), dst=Operand.reg(5))
        assert instruction.cycles() == 1

    def test_memory_destination_costs_more(self):
        register_form = Instruction(Opcode.MOV, src=Operand.reg(4), dst=Operand.reg(5))
        memory_form = Instruction(
            Opcode.MOV, src=Operand.reg(4), dst=Operand.absolute(0x0200)
        )
        assert memory_form.cycles() > register_form.cycles()

    def test_jump_costs_two(self):
        assert Instruction(Opcode.JMP, jump_offset=0).cycles() == 2

    def test_reti_costs_five(self):
        assert Instruction(Opcode.RETI).cycles() == 5

    def test_all_opcodes_have_positive_cycles(self):
        samples = [
            Instruction(Opcode.PUSH, src=Operand.reg(4)),
            Instruction(Opcode.CALL, src=Operand.imm(0xE000)),
            Instruction(Opcode.SWPB, src=Operand.reg(4)),
            Instruction(Opcode.ADD, src=Operand.imm(1), dst=Operand.absolute(0x0200)),
        ]
        for instruction in samples:
            assert instruction.cycles() >= 1


class TestInstructionRendering:
    def test_double_operand(self):
        instruction = Instruction(Opcode.MOV, src=Operand.imm(5), dst=Operand.reg(4))
        assert instruction.render() == "MOV #0x5, R4"

    def test_byte_mode_suffix(self):
        instruction = Instruction(
            Opcode.MOV, src=Operand.reg(4), dst=Operand.reg(5), byte_mode=True
        )
        assert instruction.render().startswith("MOV.B")

    def test_jump_rendering(self):
        assert Instruction(Opcode.JNE, jump_offset=-6).render() == "JNE -6"
        assert Instruction(Opcode.JMP, jump_offset=4).render() == "JMP +4"

    def test_reti_rendering(self):
        assert Instruction(Opcode.RETI).render() == "RETI"
