"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import Assembler, AssemblyError
from repro.isa.encoding import decode_instruction
from repro.isa.instructions import AddressingMode, Opcode


@pytest.fixture
def assembler():
    return Assembler()


def assemble_single(assembler, statement, base=0xE000):
    """Assemble one statement in a .text section at *base*."""
    image = assembler.assemble(
        ".section .text\n%s\n" % statement, section_addresses={".text": base}
    )
    section = image.section(".text")
    words = [
        section.data[index] | (section.data[index + 1] << 8)
        for index in range(0, len(section.data), 2)
    ]
    instruction, _ = decode_instruction(words)
    return instruction


class TestBasicAssembly:
    def test_mov_immediate_to_register(self, assembler):
        instruction = assemble_single(assembler, "MOV #0x1234, R5")
        assert instruction.opcode is Opcode.MOV
        assert instruction.src.mode is AddressingMode.IMMEDIATE
        assert instruction.src.value == 0x1234
        assert instruction.dst.register == 5

    def test_byte_mode(self, assembler):
        instruction = assemble_single(assembler, "MOV.B #0x12, R5")
        assert instruction.byte_mode

    def test_absolute_operands(self, assembler):
        instruction = assemble_single(assembler, "MOV &0x0200, &0x0202")
        assert instruction.src.mode is AddressingMode.ABSOLUTE
        assert instruction.dst.mode is AddressingMode.ABSOLUTE

    def test_indexed_operand(self, assembler):
        instruction = assemble_single(assembler, "MOV 4(R10), R5")
        assert instruction.src.mode is AddressingMode.INDEXED
        assert instruction.src.register == 10
        assert instruction.src.value == 4

    def test_indirect_autoincrement(self, assembler):
        instruction = assemble_single(assembler, "MOV @R6+, R5")
        assert instruction.src.mode is AddressingMode.AUTOINCREMENT

    def test_single_operand_instruction(self, assembler):
        instruction = assemble_single(assembler, "PUSH R11")
        assert instruction.opcode is Opcode.PUSH

    def test_comments_are_ignored(self, assembler):
        instruction = assemble_single(assembler, "NOP ; this is a comment")
        assert instruction.opcode is Opcode.MOV


class TestEmulatedInstructions:
    def test_nop(self, assembler):
        instruction = assemble_single(assembler, "NOP")
        assert instruction.opcode is Opcode.MOV
        assert instruction.dst.register == 3

    def test_ret(self, assembler):
        instruction = assemble_single(assembler, "RET")
        assert instruction.opcode is Opcode.MOV
        assert instruction.src.mode is AddressingMode.AUTOINCREMENT
        assert instruction.dst.register == 0

    def test_dint_eint(self, assembler):
        dint = assemble_single(assembler, "DINT")
        eint = assemble_single(assembler, "EINT")
        assert dint.opcode is Opcode.BIC
        assert eint.opcode is Opcode.BIS
        assert dint.src.value == 8

    def test_inc_dec_tst_clr(self, assembler):
        assert assemble_single(assembler, "INC R6").opcode is Opcode.ADD
        assert assemble_single(assembler, "DEC R6").opcode is Opcode.SUB
        assert assemble_single(assembler, "TST R6").opcode is Opcode.CMP
        assert assemble_single(assembler, "CLR R6").opcode is Opcode.MOV

    def test_pop(self, assembler):
        instruction = assemble_single(assembler, "POP R7")
        assert instruction.opcode is Opcode.MOV
        assert instruction.src.mode is AddressingMode.AUTOINCREMENT
        assert instruction.dst.register == 7

    def test_br(self, assembler):
        instruction = assemble_single(assembler, "BR #0xE100")
        assert instruction.opcode is Opcode.MOV
        assert instruction.dst.register == 0


class TestLabelsAndJumps:
    SOURCE = """
    .section .text
start:
    MOV #0, R6
loop:
    INC R6
    CMP #10, R6
    JNE loop
    JMP start
"""

    def test_labels_resolve(self, assembler):
        image = assembler.assemble(self.SOURCE, section_addresses={".text": 0xE000})
        assert image.symbol("start") == 0xE000
        assert image.symbol("loop") == 0xE002

    def test_backward_jump_encodes_negative_offset(self, assembler):
        image = assembler.assemble(self.SOURCE, section_addresses={".text": 0xE000})
        section = image.section(".text")
        # JNE follows MOV(2) + INC(2) + CMP #10 (4, immediate needs an
        # extension word) = offset 8.
        word = section.data[8] | (section.data[9] << 8)
        instruction, _ = decode_instruction([word])
        assert instruction.opcode is Opcode.JNE
        assert instruction.jump_offset < 0

    def test_duplicate_label_rejected(self, assembler):
        source = ".section .text\nfoo:\nNOP\nfoo:\nNOP\n"
        with pytest.raises(AssemblyError):
            assembler.assemble(source, section_addresses={".text": 0xE000})

    def test_undefined_symbol_rejected(self, assembler):
        source = ".section .text\nJMP nowhere\n"
        with pytest.raises(AssemblyError):
            assembler.assemble(source, section_addresses={".text": 0xE000})

    def test_jump_out_of_range_rejected(self, assembler):
        source = ".section .text\nJMP far\n.space 2000\nfar:\nNOP\n"
        with pytest.raises(AssemblyError):
            assembler.assemble(source, section_addresses={".text": 0xE000})


class TestDirectives:
    def test_word_and_byte(self, assembler):
        source = """
    .section .data at 0x0400
values:
    .word 0x1234, 0x5678
    .byte 0xAA, 0xBB
"""
        image = assembler.assemble(source)
        section = image.section(".data")
        assert section.base == 0x0400
        assert bytes(section.data) == b"\x34\x12\x78\x56\xAA\xBB"

    def test_ascii(self, assembler):
        source = '.section .data at 0x0400\n.ascii "HI"\n'
        image = assembler.assemble(source)
        assert bytes(image.section(".data").data) == b"HI"

    def test_space(self, assembler):
        source = ".section .data at 0x0400\n.space 8\nafter:\n.word 1\n"
        image = assembler.assemble(source)
        assert image.symbol("after") == 0x0408

    def test_equ_constants(self, assembler):
        source = """
    .equ LED_PIN, 0x10
    .section .text
    MOV #LED_PIN, R5
"""
        image = assembler.assemble(source, section_addresses={".text": 0xE000})
        section = image.section(".text")
        words = [section.data[0] | (section.data[1] << 8),
                 section.data[2] | (section.data[3] << 8)]
        instruction, _ = decode_instruction(words)
        assert instruction.src.value == 0x10

    def test_org_anchors_section(self, assembler):
        source = ".section .text\n.org 0xF000\nentry:\nNOP\n"
        image = assembler.assemble(source)
        assert image.symbol("entry") == 0xF000

    def test_unknown_directive_rejected(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble(".bogus 1\n", section_addresses={".text": 0xE000})


class TestSections:
    MULTI = """
    .section exec.start
entry:
    NOP
    .section exec.body
body:
    NOP
    NOP
    .section .text
main:
    NOP
"""

    def test_measure_sections(self, assembler):
        sizes = assembler.measure_sections(self.MULTI)
        assert sizes == {"exec.start": 2, "exec.body": 4, ".text": 2}

    def test_unplaced_section_rejected(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble(self.MULTI, section_addresses={"exec.start": 0xE000})

    def test_overlapping_sections_rejected(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble(
                self.MULTI,
                section_addresses={
                    "exec.start": 0xE000,
                    "exec.body": 0xE000,
                    ".text": 0xF000,
                },
            )

    def test_flatten_and_total_size(self, assembler):
        image = assembler.assemble(
            self.MULTI,
            section_addresses={
                "exec.start": 0xE000, "exec.body": 0xE010, ".text": 0xF000,
            },
        )
        assert image.total_size() == 8
        addresses = [address for address, _ in image.flatten()]
        assert 0xE000 in addresses and 0xF000 in addresses

    def test_write_to_memory(self, assembler, memory):
        image = assembler.assemble(
            ".section .text\nMOV #0x1234, R5\n", section_addresses={".text": 0xE000}
        )
        image.write_to(memory)
        assert memory.peek_word(0xE002) == 0x1234

    def test_section_lookup_missing(self, assembler):
        image = assembler.assemble(
            ".section .text\nNOP\n", section_addresses={".text": 0xE000}
        )
        with pytest.raises(KeyError):
            image.section(".data")


class TestSizingConsistency:
    def test_symbolic_immediate_size_is_stable(self, assembler):
        # A symbol whose value would fit the constant generator must still
        # be encoded with an extension word (sizes must match across passes).
        source = """
    .equ ONE, 1
    .section .text
    MOV #ONE, R5
    MOV #label, R6
label:
    NOP
"""
        image = assembler.assemble(source, section_addresses={".text": 0xE000})
        assert image.symbol("label") == 0xE008
