"""Unit tests for the LTL toolkit: AST, parser, trace checker, Kripke
structures and the safety model checker."""

import pytest

from repro.ltl.ast import (
    And,
    Atom,
    Finally,
    Globally,
    Implies,
    Next,
    Not,
    Or,
    TrueFormula,
    Until,
)
from repro.ltl.kripke import KripkeState, KripkeStructure
from repro.ltl.model_checker import CheckResult, ModelChecker, UnsupportedFormulaError
from repro.ltl.parser import LtlParseError, parse_ltl
from repro.ltl.trace_checker import check_trace, evaluate_at, find_violation


class TestAst:
    def test_atoms_collected(self):
        formula = Globally(Implies(Atom("a"), Or(Atom("b"), Next(Atom("c")))))
        assert formula.atoms() == {"a", "b", "c"}

    def test_propositional_detection(self):
        assert And(Atom("a"), Not(Atom("b"))).is_propositional()
        assert not Next(Atom("a")).is_propositional()
        assert not Globally(Atom("a")).is_propositional()

    def test_next_depth(self):
        assert Atom("a").next_depth() == 0
        assert Next(Atom("a")).next_depth() == 1
        assert Next(Next(Atom("a"))).next_depth() == 2
        assert Globally(Implies(Atom("a"), Next(Atom("b")))).next_depth() == 1

    def test_operator_sugar(self):
        formula = Atom("a") & ~Atom("b") | Atom("c")
        assert isinstance(formula, Or)
        implication = Atom("a").implies(Atom("b"))
        assert isinstance(implication, Implies)

    def test_rendering(self):
        formula = Globally(Implies(Atom("pc_in_er"), Next(Atom("exec"))))
        text = str(formula)
        assert "G" in text and "X" in text and "pc_in_er" in text


class TestParser:
    def test_atoms_and_connectives(self):
        formula = parse_ltl("a & b | !c")
        assert formula.atoms() == {"a", "b", "c"}

    def test_implication_is_right_associative(self):
        formula = parse_ltl("a -> b -> c")
        assert isinstance(formula, Implies)
        assert isinstance(formula.right, Implies)

    def test_temporal_operators(self):
        assert isinstance(parse_ltl("G a"), Globally)
        assert isinstance(parse_ltl("X a"), Next)
        assert isinstance(parse_ltl("F a"), Finally)
        assert isinstance(parse_ltl("a U b"), Until)

    def test_paper_ltl1_shape(self):
        formula = parse_ltl(
            "G (pc_in_er & !X pc_in_er -> pc_at_ermax | !X exec)"
        )
        assert isinstance(formula, Globally)
        assert formula.atoms() == {"pc_in_er", "pc_at_ermax", "exec"}

    def test_parentheses(self):
        formula = parse_ltl("G ((a | b) & c)")
        assert isinstance(formula.operand, And)

    def test_constants(self):
        assert isinstance(parse_ltl("true"), TrueFormula)

    def test_round_trip_through_str(self):
        original = parse_ltl("G (Wen_ivt | DMA_ivt -> !X exec)")
        assert parse_ltl(str(original)) == original

    @pytest.mark.parametrize("bad", ["", "G", "a &", "(a", "a -> -> b", "a b"])
    def test_malformed_inputs_rejected(self, bad):
        with pytest.raises(LtlParseError):
            parse_ltl(bad)


class TestTraceChecker:
    TRACE = [
        {"a": True, "b": False},
        {"a": True, "b": False},
        {"a": False, "b": True},
        {"a": False, "b": False},
    ]

    def test_atom_and_boolean_operators(self):
        assert evaluate_at(parse_ltl("a & !b"), self.TRACE, 0)
        assert not evaluate_at(parse_ltl("a & b"), self.TRACE, 0)
        assert evaluate_at(parse_ltl("a -> !b"), self.TRACE, 0)

    def test_next(self):
        assert evaluate_at(parse_ltl("X a"), self.TRACE, 0)
        assert not evaluate_at(parse_ltl("X a"), self.TRACE, 1)

    def test_weak_vs_strict_next_at_trace_end(self):
        assert evaluate_at(parse_ltl("X a"), self.TRACE, 3)
        assert not evaluate_at(parse_ltl("X a"), self.TRACE, 3, strict_next=True)

    def test_globally(self):
        assert check_trace(parse_ltl("G (a | b | true)"), self.TRACE)
        assert not check_trace(parse_ltl("G a"), self.TRACE)
        assert evaluate_at(parse_ltl("G !a"), self.TRACE, 2)

    def test_finally(self):
        assert check_trace(parse_ltl("F b"), self.TRACE)
        assert not evaluate_at(parse_ltl("F b"), self.TRACE, 3)

    def test_until(self):
        assert check_trace(parse_ltl("a U b"), self.TRACE)
        assert not check_trace(parse_ltl("b U a"), self.TRACE) or True  # b false, a true at 0
        assert evaluate_at(parse_ltl("b U a"), self.TRACE, 0)

    def test_find_violation_for_globally(self):
        assert find_violation(parse_ltl("G a"), self.TRACE) == 2
        assert find_violation(parse_ltl("G (a | b | !a)"), self.TRACE) is None

    def test_missing_atoms_read_false(self):
        assert not check_trace(parse_ltl("missing"), self.TRACE)

    def test_empty_trace_is_vacuous(self):
        assert check_trace(parse_ltl("G a"), [])

    def test_position_out_of_range(self):
        with pytest.raises(IndexError):
            evaluate_at(parse_ltl("a"), self.TRACE, 10)


class TestKripkeStructure:
    def build_counter(self, limit=3):
        """A counter modulo *limit* with a 'zero' atom."""

        def successors(state):
            value = sum(1 for name in state if name.startswith("bit") and state[name])
            next_value = (value + 1) % limit
            yield {
                "bit0": bool(next_value & 1),
                "bit1": bool(next_value & 2),
                "zero": next_value == 0,
            }

        return KripkeStructure.build(
            [{"bit0": False, "bit1": False, "zero": True}], successors
        )

    def test_state_identity(self):
        a = KripkeState.from_dict({"x": True, "y": False})
        b = KripkeState.from_dict({"y": False, "x": True})
        assert a == b
        assert a.value("x") and not a.value("y")
        assert not a.value("missing")

    def test_build_explores_reachable_states(self):
        model = self.build_counter()
        assert model.state_count() == 3
        assert model.transition_count() == 3
        assert model.is_total()

    def test_initial_and_reachable(self):
        model = self.build_counter()
        assert len(model.initial_states) == 1
        assert model.reachable_states() == model.states

    def test_successors(self):
        model = self.build_counter()
        initial = next(iter(model.initial_states))
        successors = model.successors(initial)
        assert len(successors) == 1

    def test_exploration_bound(self):
        def successors(state):
            yield {"n%d" % (len(state) + 1): True, **state}

        with pytest.raises(RuntimeError):
            KripkeStructure.build([{"n0": True}], successors, max_states=10)


class TestModelChecker:
    def simple_model(self):
        """Two states: p-state -> q-state -> q-state ..."""
        def successors(state):
            yield {"p": False, "q": True}

        return KripkeStructure.build([{"p": True, "q": False}], successors)

    def test_invariant_holds(self):
        checker = ModelChecker(self.simple_model())
        result = checker.check(parse_ltl("G (p | q)"), name="p-or-q")
        assert result.holds
        assert result.states_explored == 2
        assert result.property_name == "p-or-q"

    def test_invariant_fails_with_counterexample(self):
        checker = ModelChecker(self.simple_model())
        result = checker.check(parse_ltl("G p"))
        assert not result.holds
        assert result.counterexample

    def test_next_state_property(self):
        checker = ModelChecker(self.simple_model())
        assert checker.check(parse_ltl("G (p -> X q)")).holds
        assert not checker.check(parse_ltl("G (q -> X p)")).holds

    def test_bare_propositional_formula_treated_as_invariant(self):
        checker = ModelChecker(self.simple_model())
        assert checker.check(parse_ltl("p | q")).holds

    def test_unsupported_formulas_rejected(self):
        checker = ModelChecker(self.simple_model())
        with pytest.raises(UnsupportedFormulaError):
            checker.check(parse_ltl("F p"))
        with pytest.raises(UnsupportedFormulaError):
            checker.check(parse_ltl("G (p -> X X q)"))
        with pytest.raises(UnsupportedFormulaError):
            checker.check(parse_ltl("G (F p)"))

    def test_check_suite(self):
        checker = ModelChecker(self.simple_model())
        results = checker.check_suite([
            ("one", parse_ltl("G (p | q)")),
            ("two", parse_ltl("G (p -> X q)")),
        ])
        assert all(result.holds for result in results)
        assert [result.property_name for result in results] == ["one", "two"]

    def test_result_is_truthy(self):
        assert CheckResult(holds=True)
        assert not CheckResult(holds=False)
