"""Unit tests for the abstract monitor models and the property suites."""

import pytest

from repro.ltl.model_checker import ModelChecker
from repro.ltl.parser import parse_ltl
from repro.ltl.properties import (
    MODEL_BUILDERS,
    PropertySpec,
    apex_property_suite,
    asap_new_property_suite,
    asap_property_suite,
    build_apex_model,
    build_asap_model,
    build_model,
    vrased_property_suite,
)


class TestSuiteComposition:
    def test_asap_suite_has_21_properties(self):
        assert len(asap_property_suite()) == 21

    def test_vrased_suite_has_10_properties(self):
        assert len(vrased_property_suite()) == 10

    def test_apex_suite_includes_ltl3(self):
        names = [spec.name for spec in apex_property_suite()]
        assert "apex-ltl3-no-interrupts" in names

    def test_asap_suite_drops_ltl3_and_adds_ap1(self):
        names = [spec.name for spec in asap_property_suite()]
        assert "apex-ltl3-no-interrupts" not in names
        assert "asap-ltl4-ivt-immutability" in names

    def test_asap_new_properties_are_three(self):
        assert len(asap_new_property_suite()) == 3

    def test_property_origins(self):
        origins = {spec.origin for spec in asap_property_suite()}
        assert origins == {"vrased", "apex", "asap"}

    def test_every_property_parses(self):
        for spec in asap_property_suite() + apex_property_suite():
            formula = spec.formula
            assert formula.atoms()

    def test_every_property_references_a_known_model(self):
        for spec in asap_property_suite() + apex_property_suite():
            assert spec.model in MODEL_BUILDERS

    def test_names_are_unique(self):
        names = [spec.name for spec in asap_property_suite()]
        assert len(names) == len(set(names))


class TestModels:
    def test_build_model_by_name(self):
        model = build_model("ivt_guard")
        assert model.state_count() > 0
        with pytest.raises(KeyError):
            build_model("missing-model")

    def test_er_flow_models_differ_only_in_ltl3(self, verification_models):
        apex = verification_models["er_flow_apex"]
        asap = verification_models["er_flow_asap"]
        checker_apex = ModelChecker(apex)
        checker_asap = ModelChecker(asap)
        ltl3 = parse_ltl("G (pc_in_er & irq -> !X exec)")
        assert checker_apex.check(ltl3).holds
        assert not checker_asap.check(ltl3).holds

    def test_models_are_total(self, verification_models):
        for name, model in verification_models.items():
            assert model.is_total(), name

    def test_convenience_builders(self):
        assert build_apex_model().state_count() == build_asap_model().state_count()


class TestPropertyVerification:
    def check(self, models, spec):
        return ModelChecker(models[spec.model]).check(spec.formula, name=spec.name)

    def test_all_asap_properties_hold(self, verification_models):
        failures = [
            spec.name
            for spec in asap_property_suite()
            if not self.check(verification_models, spec).holds
        ]
        assert failures == []

    def test_all_apex_properties_hold(self, verification_models):
        failures = [
            spec.name
            for spec in apex_property_suite()
            if not self.check(verification_models, spec).holds
        ]
        assert failures == []

    def test_ltl4_fails_on_a_model_without_the_guard(self, verification_models):
        # Sanity: LTL 4 is not vacuous -- it fails against the plain
        # control-flow model, which knows nothing about the IVT guard.
        spec = PropertySpec(
            "ltl4-on-wrong-model",
            "G (Wen_ivt | DMA_ivt -> !X exec)",
            "er_flow_asap", "asap",
        )
        result = self.check(verification_models, spec)
        assert result.holds  # vacuously true: the atoms never hold there

    def test_exec_rises_only_at_ermin_has_counterexample_potential(self, verification_models):
        # The converse property must fail (EXEC does not rise at every
        # ER_min visit after a violation-free step is not required).
        checker = ModelChecker(verification_models["er_flow_asap"])
        converse = parse_ltl("G (X pc_at_ermin -> X exec)")
        assert checker.check(converse).holds  # the model always sets EXEC at ER_min
        stronger = parse_ltl("G (exec -> pc_in_er)")
        assert not checker.check(stronger).holds
