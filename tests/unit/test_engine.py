"""Unit tests for the execution-engine registry and its plumbing.

The differential suites (``tests/integration/test_engine_differential.py``,
``tests/property/test_property_engines.py``) pin the ``blocks`` engine
byte-identical to the reference; this file covers the registry
mechanics, the config plumbing through testbench/campaign/fleet/CLI,
crash-context reporting and compiled-block lifecycle (invalidation,
decode-cache clears, mid-session swaps).
"""

import pytest

from repro.cpu import engine as engine_module
from repro.cpu.core import CPUError
from repro.cpu.decode_cache import DecodeCache
from repro.cpu.engine import (
    ENGINES,
    BlockEngine,
    ExecutionEngine,
    engine_class,
    engine_name,
    register_engine,
    set_engine,
    use_engine,
)
from repro.device.mcu import Device, DeviceConfig
from repro.firmware.testbench import TestbenchConfig
from repro.isa.assembler import Assembler
from repro.peripherals.registers import PeripheralRegisters
from repro.sim.runner import CampaignRunner
from repro.sim.scenario import FirmwareRef, ScenarioSpec, StopSpec


STOP_WATCHDOG = "MOV #0x5A80, &0x%04X\n" % PeripheralRegisters.WDTCTL


def load_program(device, source, base=0xE000):
    image = Assembler().assemble(
        ".section .text\n" + source, section_addresses={".text": base}
    )
    image.write_to(device.memory)
    device.ivt.set_reset_vector(base)
    device.reset()
    return image


def silent_device(engine):
    """A trace-less device (the silent path is where blocks execute)."""
    return Device(DeviceConfig(trace_enabled=False, exec_engine=engine))


class TestRegistry:
    def test_default_engine_is_interp(self, monkeypatch):
        monkeypatch.delenv(engine_module.ENV_VAR, raising=False)
        assert engine_name() == "interp"
        assert engine_class() is engine_module.InterpreterEngine

    def test_environment_variable_selects(self, monkeypatch):
        monkeypatch.setenv(engine_module.ENV_VAR, "blocks")
        assert engine_name() == "blocks"
        assert Device(DeviceConfig()).engine.name == "blocks"

    def test_set_engine_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(engine_module.ENV_VAR, "blocks")
        set_engine("interp")
        try:
            assert engine_name() == "interp"
        finally:
            set_engine(None)
        assert engine_name() == "blocks"

    def test_use_engine_scopes_and_restores(self, monkeypatch):
        monkeypatch.delenv(engine_module.ENV_VAR, raising=False)
        assert engine_name() == "interp"
        with use_engine("blocks") as cls:
            assert cls is BlockEngine
            assert Device(DeviceConfig()).engine.name == "blocks"
        assert engine_name() == "interp"

    def test_unknown_engine_fails_loudly(self):
        with pytest.raises(ValueError, match="blocks, interp"):
            engine_class("sparta")
        with pytest.raises(ValueError):
            Device(DeviceConfig(exec_engine="sparta"))

    def test_register_engine_extends_registry(self):
        class NullEngine(ExecutionEngine):
            name = "null-test"

        register_engine("null-test", NullEngine)
        try:
            assert engine_class("null-test") is NullEngine
            assert Device(DeviceConfig(exec_engine="null-test")).engine.name \
                == "null-test"
        finally:
            del ENGINES["null-test"]


class TestConfigPlumbing:
    def test_device_config_selects_engine(self, monkeypatch):
        monkeypatch.delenv(engine_module.ENV_VAR, raising=False)
        assert Device(DeviceConfig(exec_engine="blocks")).engine.name == "blocks"
        assert Device(DeviceConfig()).engine.name == "interp"

    def test_testbench_config_forwards_engine(self):
        from repro.firmware.blinker import blinker_firmware
        from repro.firmware.testbench import PoxTestbench

        bench = PoxTestbench(blinker_firmware(authorized=True),
                             TestbenchConfig(exec_engine="blocks"))
        assert bench.device.engine.name == "blocks"
        assert bench.device.exec_engine_name == "blocks"

    def test_campaign_runner_injects_override_into_pox_specs(self):
        spec = ScenarioSpec(name="s", firmware=FirmwareRef.of("blinker"),
                            stop=StopSpec(kind="steps", value=10))
        runner = CampaignRunner(engine="blocks")
        rewritten = runner._spec_with_engine(spec)
        assert ("exec_engine", "blocks") in rewritten.config_overrides
        assert rewritten.testbench_config().exec_engine == "blocks"

    def test_campaign_runner_respects_existing_override(self):
        spec = ScenarioSpec(name="s", firmware=FirmwareRef.of("blinker"),
                            stop=StopSpec(kind="steps", value=10),
                            config_overrides=(("exec_engine", "interp"),))
        rewritten = CampaignRunner(engine="blocks")._spec_with_engine(spec)
        assert rewritten.config_overrides == (("exec_engine", "interp"),)

    def test_campaign_runner_validates_engine_eagerly(self):
        with pytest.raises(ValueError, match="unknown execution engine"):
            CampaignRunner(engine="sparta")

    def test_cli_engine_flag(self):
        from repro.experiments.__main__ import build_parser, main

        args = build_parser().parse_args(["--engine", "blocks"])
        assert args.engine == "blocks"
        assert main(["--engine", "sparta"]) == 2  # argparse rejects

    def test_fleet_forwards_engine_to_every_prover(self):
        from repro.net.fleet import Fleet

        fleet = Fleet(size=2, exec_engine="blocks")
        fleet._build_benches()
        assert [bench.device.engine.name for bench in fleet.benches] \
            == ["blocks", "blocks"]


class TestCrashContext:
    def test_crash_reports_engine_name(self):
        for engine in ("interp", "blocks"):
            device = silent_device(engine)
            device.cpu.pc = 0x5000  # unprogrammed memory
            device.run_batch(5)
            assert device.crashed
            assert device.crash_engine == engine
            assert "illegal instruction" in device.crash_reason

    def test_crash_reason_is_engine_independent(self):
        reasons = {}
        for engine in ("interp", "blocks"):
            device = silent_device(engine)
            device.cpu.pc = 0x5000
            device.run_batch(5)
            reasons[engine] = device.crash_reason
        assert reasons["interp"] == reasons["blocks"]

    def test_cpuerror_carries_engine_attribute(self):
        device = silent_device("blocks")
        device.cpu.pc = 0x5000
        device._periph_dirty = False  # silent path only runs when quiescent
        try:
            device.engine.silent_chunk(5)
        except CPUError:  # pragma: no cover - latched, not raised
            pytest.fail("chunk loops latch the crash instead of raising")
        assert device.crash_engine == "blocks"

    def test_reset_clears_crash_engine(self):
        device = silent_device("blocks")
        load_program(device, STOP_WATCHDOG + "loop:\nNOP\nJMP loop\n")
        device.cpu.pc = 0x5000
        device.run_batch(5)
        assert device.crash_engine == "blocks"
        device.reset()
        assert device.crash_engine == ""
        assert not device.crashed


class TestCompiledBlockLifecycle:
    def _hot_device(self):
        device = silent_device("blocks")
        load_program(device, STOP_WATCHDOG + "loop:\nNOP\nJMP loop\n")
        device.run_batch(200)
        assert device.engine._blocks, "hot loop should have compiled"
        return device

    def test_decode_cache_clear_flushes_compiled_blocks(self):
        device = self._hot_device()
        device.decode_cache.clear()
        assert device.engine._blocks == {}

    def test_reflash_flushes_compiled_blocks(self):
        # load_bytes over the program region triggers the full-flush
        # path of the decode cache *and* the engine's own listener.
        device = self._hot_device()
        device.memory.load_bytes(0xE000, bytes(128))
        assert device.engine._blocks == {}

    def test_write_into_block_invalidates_it(self):
        device = self._hot_device()
        starts = list(device.engine._blocks)
        before = device.engine.invalidations
        device.memory.write_word(starts[0], 0x4303, initiator="dma")
        assert starts[0] not in device.engine._blocks
        assert device.engine.invalidations > before

    def test_unrelated_write_keeps_blocks(self):
        device = self._hot_device()
        count = len(device.engine._blocks)
        device.memory.write_word(0x0300, 0x1234, initiator="dma")
        assert len(device.engine._blocks) == count

    def test_device_reset_flushes_blocks(self):
        device = self._hot_device()
        device.reset()
        assert device.engine._blocks == {}

    def test_cpu_registers_object_survives_reset(self):
        # Compiled closures pre-bind the register list; a reset must
        # clear it in place, never rebind it.
        device = self._hot_device()
        registers = device.cpu.registers
        device.reset()
        assert device.cpu.registers is registers

    def test_set_exec_engine_swaps_clean(self):
        device = self._hot_device()
        old_engine = device.engine
        engine = device.set_exec_engine("interp")
        assert device.engine is engine
        assert device.exec_engine_name == "interp"
        assert old_engine._blocks == {}
        # The old engine's listeners are gone: code writes must not
        # touch it, and the device keeps running on the interpreter.
        device.memory.write_word(0xE006, 0x4303, initiator="dma")
        device.run_batch(50)
        assert not device.crashed
        back = device.set_exec_engine("blocks")
        device.run_batch(200)
        assert back._blocks, "swapped-in engine compiles from a blank slate"

    def test_engine_stats_shape(self):
        device = self._hot_device()
        stats = device.engine.stats()
        assert stats["engine"] == "blocks"
        assert stats["compiled"] >= 1
        assert stats["block_runs"] >= 1
        assert stats["specialized_ops"] >= 1
        assert stats["generic_ops"] >= 0
        assert stats["chained_exits"] >= 0
        assert stats["superblocks"] in (True, False)
        interp_stats = silent_device("interp").engine.stats()
        assert interp_stats == {"engine": "interp"}

    def test_hot_loop_chains_exits(self, monkeypatch):
        # `JMP loop` has a statically-known target: the v2 engine should
        # hop block-to-block inside one silent chunk instead of paying a
        # dict lookup per iteration.  (Pinned on: the CI fallback legs
        # run this file with the knob exported off.)
        monkeypatch.delenv(engine_module.SUPERBLOCKS_ENV, raising=False)
        device = self._hot_device()
        assert device.engine.stats()["chained_exits"] >= 1

    def test_specialization_counters_split_compile_results(self):
        device = self._hot_device()
        stats = device.engine.stats()
        blocks = device.engine._blocks.values()
        assert stats["specialized_ops"] + stats["generic_ops"] \
            == sum(len(block.ops) for block in blocks)

    def test_decode_cache_aggregate_stats(self):
        device = self._hot_device()
        totals = DecodeCache.aggregate_stats()
        assert totals["caches"] >= 1
        assert totals["hits"] >= device.decode_cache.hits >= 1
        assert 0.0 <= totals["hit_rate"] <= 1.0


class TestSuperblockKnob:
    """`REPRO_BLOCKS_SUPERBLOCKS` / `DeviceConfig.blocks_superblocks`."""

    COUNTING_LOOP = STOP_WATCHDOG + (
        "loop:\n"
        "INC R6\n"
        "JMP loop\n"
    )

    def _hot(self, device):
        load_program(device, self.COUNTING_LOOP)
        device.run_batch(200)
        return device.engine

    def test_superblocks_on_by_default(self, monkeypatch):
        monkeypatch.delenv(engine_module.SUPERBLOCKS_ENV, raising=False)
        monkeypatch.setattr(engine_module, "MAX_BLOCK_OPS", 64)
        engine = self._hot(silent_device("blocks"))
        stats = engine.stats()
        assert stats["superblocks"] is True
        # The unconditional back-edge is absorbed: the loop body unrolls
        # across the JMP instead of ending the block at it.
        assert any(len(block.ops) > 2 for block in engine._blocks.values())

    @pytest.mark.parametrize("value", ["0", "false", "OFF", "No"])
    def test_env_knob_disables_superblocks(self, monkeypatch, value):
        monkeypatch.setenv(engine_module.SUPERBLOCKS_ENV, value)
        engine = self._hot(silent_device("blocks"))
        stats = engine.stats()
        assert stats["superblocks"] is False
        # Every block now ends at its terminator: INC + JMP at most.
        assert all(len(block.ops) <= 2 for block in engine._blocks.values())
        # The knob is the conservative v1-shape fallback: block chaining
        # rides on the same switch, so every exit returns to the driver.
        assert stats["chained_exits"] == 0

    def test_device_config_overrides_env(self, monkeypatch):
        monkeypatch.setenv(engine_module.SUPERBLOCKS_ENV, "0")
        device = Device(DeviceConfig(trace_enabled=False,
                                     exec_engine="blocks",
                                     blocks_superblocks=True))
        engine = self._hot(device)
        assert engine.stats()["superblocks"] is True
        device = Device(DeviceConfig(trace_enabled=False,
                                     exec_engine="blocks",
                                     blocks_superblocks=False))
        monkeypatch.delenv(engine_module.SUPERBLOCKS_ENV, raising=False)
        assert self._hot(device).stats()["superblocks"] is False

    def test_max_ops_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv(engine_module.MAX_OPS_ENV, "-3")
        assert engine_module._max_block_ops_default() == 1
        monkeypatch.setenv(engine_module.MAX_OPS_ENV, "not-a-number")
        assert engine_module._max_block_ops_default() == 64
        monkeypatch.delenv(engine_module.MAX_OPS_ENV, raising=False)
        assert engine_module._max_block_ops_default() == 64
