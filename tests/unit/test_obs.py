"""Unit tests for the telemetry spine (:mod:`repro.obs`).

What is pinned here:

* instruments are get-or-create, label-keyed, and survive a
  many-threads-many-counters torture without losing increments;
* ``merge()`` of a snapshot into a fresh hermetic registry reproduces
  the snapshot exactly (the child-process reporting contract -- the
  real process boundary is exercised in the telemetry integration
  tests);
* the histogram keeps the old ``LatencyRecorder`` percentile semantics
  (nearest rank over a bounded window) while adding mergeable buckets;
* spans nest through the contextvar, survive the wire encoding, and
  reassemble into one parent->children tree;
* the sinks write the exact record shapes ``--telemetry`` consumers
  parse.
"""

import json
import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    Span,
    Tracer,
    export_telemetry,
    get_registry,
    render_tree,
    set_registry,
    span_tree,
    use_registry,
)


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.export() == 5
        with pytest.raises(ValueError, match="up"):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.export() == 13

    def test_histogram_buckets_and_percentiles(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            histogram.record(value)
        # One <=0.1, two <=1.0, one in the implicit +inf bucket.
        assert histogram.bucket_counts == [1, 2, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(6.25)
        assert histogram.p50 == pytest.approx(0.7)

    def test_histogram_window_is_bounded(self):
        histogram = Histogram(window=8)
        for value in range(100):
            histogram.record(float(value))
        assert histogram.count == 100
        assert histogram.percentile(0.0) == 92.0
        with pytest.raises(ValueError, match="window"):
            Histogram(window=0)

    def test_histogram_merge_requires_matching_bounds(self):
        ours = Histogram(buckets=(1.0, 2.0))
        theirs = Histogram(buckets=(1.0, 3.0))
        theirs.record(0.5)
        with pytest.raises(ValueError, match="bounds"):
            ours.merge_export(theirs.export())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry(collect=False)
        assert registry.counter("store.hits") is registry.counter("store.hits")
        assert registry.counter("a", {"k": 1}) is not registry.counter("a")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry(collect=False)
        registry.counter("store.hits")
        with pytest.raises(TypeError, match="Counter"):
            registry.gauge("store.hits")

    def test_labels_fold_into_the_key(self):
        registry = MetricsRegistry(collect=False)
        registry.counter("rpc.calls", {"worker": "w1", "kind": "ra"}).inc()
        assert "rpc.calls{kind=ra,worker=w1}" in registry.names()

    def test_snapshot_shape_is_json_representable(self):
        registry = MetricsRegistry(collect=False)
        registry.counter("c").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h").record(0.2)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot, allow_nan=False)) == snapshot
        assert snapshot["counters"]["c"] == 3
        assert snapshot["gauges"]["g"] == 7
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_torture_many_threads_many_counters(self):
        registry = MetricsRegistry(collect=False)
        threads, increments, names = 8, 2000, ("a", "b", "c", "d")

        def hammer():
            for index in range(increments):
                name = names[index % len(names)]
                registry.counter(name).inc()
                registry.gauge("g." + name).inc()
                registry.histogram("h." + name).record(index * 1e-4)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        snapshot = registry.snapshot()
        per_name = threads * increments // len(names)
        for name in names:
            assert snapshot["counters"][name] == per_name
            assert snapshot["gauges"]["g." + name] == per_name
            assert snapshot["histograms"]["h." + name]["count"] == per_name

    def test_merge_identity_round_trip(self):
        # The child-process reporting contract: merging a snapshot into
        # a fresh hermetic registry and snapshotting again reproduces
        # it exactly.
        child = MetricsRegistry(collect=False)
        child.counter("campaign.scenarios").inc(5)
        child.gauge("service.instances").set(2)
        histogram = child.histogram("campaign.scenario_seconds",
                                    buckets=(0.1, 1.0), window=16)
        for value in (0.05, 0.5, 3.0):
            histogram.record(value)
        exported = child.snapshot()

        parent = MetricsRegistry(collect=False)
        parent.merge(exported)
        assert parent.snapshot() == exported

    def test_merge_accumulates_counters_and_histograms(self):
        parent = MetricsRegistry(collect=False)
        parent.counter("store.hits").inc(2)
        parent.histogram("lat", buckets=(1.0,)).record(0.5)
        child = MetricsRegistry(collect=False)
        child.counter("store.hits").inc(3)
        child.gauge("g").set(9)
        child.histogram("lat", buckets=(1.0,)).record(2.0)
        parent.merge(child.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["store.hits"] == 5
        assert snapshot["gauges"]["g"] == 9
        assert snapshot["histograms"]["lat"]["count"] == 2
        assert snapshot["histograms"]["lat"]["bucket_counts"] == [1, 1]

    def test_instance_collectors_run_at_snapshot_time(self):
        registry = MetricsRegistry(collect=False)
        calls = []

        @registry.add_collector
        def publish(target):
            calls.append(1)
            target.gauge("collected").set(len(calls))

        assert registry.snapshot()["gauges"]["collected"] == 1
        assert registry.snapshot()["gauges"]["collected"] == 2
        registry.remove_collector(publish)
        registry.snapshot()
        assert len(calls) == 2

    def test_hermetic_registry_ignores_global_collectors(self):
        # collect=False snapshots contain exactly what was recorded --
        # none of the engine./cache./service. collector families.
        registry = MetricsRegistry(collect=False)
        registry.counter("only.this").inc()
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["only.this"]
        assert snapshot["gauges"] == {}

    def test_use_registry_swaps_the_default(self):
        original = get_registry()
        hermetic = MetricsRegistry(collect=False)
        with use_registry(hermetic) as active:
            assert active is hermetic
            assert get_registry() is hermetic
            get_registry().counter("scoped").inc()
        assert get_registry() is original
        assert hermetic.snapshot()["counters"]["scoped"] == 1

    def test_default_registry_collects_engine_and_cache_families(self):
        # Importing the stack registers the global collectors; any
        # default-flavoured registry snapshot then carries the
        # snapshot-on-read families.
        import repro.cpu.engine  # noqa: F401  (registers collectors)

        fresh = MetricsRegistry()
        names = set()
        snapshot = fresh.snapshot()
        for family in snapshot.values():
            names.update(family)
        assert any(name.startswith("cache.") for name in names)


class TestTracer:
    def test_nesting_through_the_contextvar(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = tracer.finished_spans()
        assert [span.name for span in spans] == ["inner", "outer"]
        assert all(span.finished for span in spans)

    def test_begin_without_activate_leaves_context_alone(self):
        tracer = Tracer()
        detached = tracer.begin("campaign.run", activate=False)
        with tracer.span("unrelated") as other:
            assert other.trace_id != detached.trace_id
        tracer.finish(detached)
        assert detached.finished

    def test_synthetic_add_uses_measured_duration(self):
        tracer = Tracer()
        root = tracer.begin("campaign.run", activate=False)
        span = tracer.add("campaign.scenario", 0.25,
                          parent=(root.trace_id, root.span_id),
                          attributes={"scenario": "s1"})
        assert span.duration == 0.25
        assert span.parent_id == root.span_id
        assert span.trace_id == root.trace_id

    def test_wire_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer", attributes={"k": "v"}):
            with tracer.span("inner"):
                pass
        wire = tracer.drain_wire()
        assert tracer.finished_spans() == []
        # Wire frames are plain lists of scalars + one dict: exactly
        # what the restricted unpickler on the job sockets admits.
        assert all(isinstance(frame, list) for frame in wire)
        receiver = Tracer()
        received = receiver.ingest(wire)
        assert {span.name for span in received} == {"outer", "inner"}
        assert received[0].attributes or received[1].attributes

    def test_unknown_wire_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            Span.from_wire([99, "t", "s", None, "n", 0.0, 0.0, {}])

    def test_retention_limit_counts_drops(self):
        tracer = Tracer(limit=2)
        for index in range(5):
            tracer.add("span-%d" % index, 0.0)
        assert len(tracer.finished_spans()) == 2
        assert tracer.dropped == 3
        tracer.reset()
        assert tracer.finished_spans() == [] and tracer.dropped == 0

    def test_tree_reassembly_and_orphans(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child-b"):
                pass
            with tracer.span("child-a"):
                pass
        orphan = Span("orphan", trace_id="t", span_id="o",
                      parent_id="elsewhere", start_time=0.0, duration=0.0)
        spans = tracer.drain() + [orphan]
        tree = span_tree(spans)
        roots = {span.name for span in tree[None]}
        assert roots == {"root", "orphan"}
        root = next(span for span in tree[None] if span.name == "root")
        children = [span.name for span in tree[root.span_id]]
        # Children sort by start time, not finish order.
        assert children == ["child-b", "child-a"]
        rendering = render_tree(spans)
        assert "root" in rendering and "  child-b" in rendering


class TestSinks:
    def _sample(self, tracer):
        with tracer.span("root"):
            pass
        return tracer.drain()

    def test_in_memory_sink_records(self):
        registry = MetricsRegistry(collect=False)
        registry.counter("c").inc()
        sink = InMemorySink()
        sink.write_metrics(registry.snapshot())
        sink.write_spans(self._sample(Tracer()))
        assert len(sink.metrics_records()) == 1
        assert sink.metrics_records()[0]["counters"] == {"c": 1}
        (span_record,) = sink.span_records()
        assert span_record["name"] == "root"
        assert span_record["parent_id"] is None

    def test_jsonl_sink_appends_parseable_lines(self, tmp_path):
        path = tmp_path / "nested" / "telemetry.jsonl"
        sink = JsonlSink(path)
        registry = MetricsRegistry(collect=False)
        registry.gauge("g").set(1)
        sink.write_metrics(registry.snapshot())
        sink.write_spans(self._sample(Tracer()))
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [record["record"] for record in records] == ["metrics", "span"]

    def test_export_telemetry_drains_the_tracer(self, tmp_path):
        registry = MetricsRegistry(collect=False)
        registry.counter("campaign.scenarios").inc(2)
        tracer = Tracer()
        self._sample(tracer)
        with tracer.span("kept"):
            pass
        path = export_telemetry(tmp_path, registry=registry, tracer=tracer)
        assert path.endswith("telemetry.jsonl")
        records = [json.loads(line) for line in
                   open(path, encoding="utf-8")]
        kinds = [record["record"] for record in records]
        assert kinds.count("metrics") == 1 and kinds.count("span") == 1
        assert tracer.finished_spans() == []
        # A second export appends a fresh snapshot, no duplicate spans.
        export_telemetry(tmp_path, registry=registry, tracer=tracer)
        records = [json.loads(line) for line in
                   open(path, encoding="utf-8")]
        assert [r["record"] for r in records] == ["metrics", "span", "metrics"]
