"""Unit tests for the peripherals and the interrupt controller."""

import pytest

from repro.memory.memory import Memory
from repro.peripherals.dma import DmaController
from repro.peripherals.gpio import GpioPort
from repro.peripherals.interrupt_controller import InterruptController
from repro.peripherals.registers import (
    DmaBits,
    InterruptVectors,
    PeripheralRegisters,
    TimerBits,
    WatchdogBits,
)
from repro.peripherals.timer import TimerA
from repro.peripherals.uart import Uart
from repro.peripherals.watchdog import Watchdog


@pytest.fixture
def port1(memory):
    port = GpioPort(
        memory, "port1",
        PeripheralRegisters.P1IN, PeripheralRegisters.P1OUT,
        PeripheralRegisters.P1DIR, PeripheralRegisters.P1IFG,
        PeripheralRegisters.P1IE, ivt_index=InterruptVectors.PORT1,
    )
    port.reset()
    return port


class TestGpioPort:
    def test_assert_input_sets_in_and_ifg(self, memory, port1):
        port1.assert_input(0x01)
        assert port1.input_value() & 0x01
        assert memory.peek_byte(PeripheralRegisters.P1IFG) & 0x01

    def test_interrupt_requires_enable_bit(self, memory, port1):
        port1.press_button(0x01)
        assert not port1.interrupt_pending()
        memory.load_bytes(PeripheralRegisters.P1IE, bytes([0x01]))
        assert port1.interrupt_pending()

    def test_acknowledge_clears_flag(self, memory, port1):
        memory.load_bytes(PeripheralRegisters.P1IE, bytes([0x01]))
        port1.press_button(0x01)
        port1.acknowledge_interrupt()
        assert not port1.interrupt_pending()

    def test_deassert_input(self, port1):
        port1.assert_input(0x01)
        port1.assert_input(0x01, level=False)
        assert not port1.input_value() & 0x01

    def test_output_history_records_changes(self, memory, port1):
        memory.load_bytes(PeripheralRegisters.P1OUT, bytes([0x10]))
        port1.tick(5)
        memory.load_bytes(PeripheralRegisters.P1OUT, bytes([0x00]))
        port1.tick(5)
        values = [value for _, value in port1.output_history]
        assert values == [0x10, 0x00]


class TestTimerA:
    @pytest.fixture
    def timer(self, memory):
        timer = TimerA(memory)
        timer.reset()
        return timer

    def arm(self, memory, compare=100, interrupt=True):
        memory.load_word(PeripheralRegisters.TACCR0, compare)
        memory.load_word(
            PeripheralRegisters.TACCTL0, TimerBits.CCIE if interrupt else 0
        )
        memory.load_word(PeripheralRegisters.TACTL, TimerBits.ENABLE)

    def test_disabled_timer_does_not_count(self, memory, timer):
        timer.tick(50)
        assert timer.counter == 0

    def test_counts_when_enabled(self, memory, timer):
        self.arm(memory, compare=1000)
        timer.tick(50)
        assert timer.counter == 50

    def test_compare_raises_interrupt(self, memory, timer):
        self.arm(memory, compare=30)
        timer.tick(40)
        assert timer.interrupt_pending()

    def test_compare_without_ccie_does_not_interrupt(self, memory, timer):
        self.arm(memory, compare=30, interrupt=False)
        timer.tick(40)
        assert not timer.interrupt_pending()

    def test_acknowledge_clears_pending(self, memory, timer):
        self.arm(memory, compare=30)
        timer.tick(40)
        timer.acknowledge_interrupt()
        assert not timer.interrupt_pending()

    def test_clear_bit_resets_counter(self, memory, timer):
        self.arm(memory, compare=1000)
        timer.tick(100)
        memory.load_word(
            PeripheralRegisters.TACTL, TimerBits.ENABLE | TimerBits.CLEAR
        )
        timer.tick(1)
        assert timer.counter <= 1


class TestUart:
    @pytest.fixture
    def uart(self, memory):
        uart = Uart(memory)
        uart.reset()
        return uart

    def test_receive_latches_into_buffer(self, memory, uart):
        uart.receive_byte(0x42)
        uart.tick(1)
        assert memory.peek_byte(PeripheralRegisters.URXBUF) == 0x42
        assert memory.peek_byte(PeripheralRegisters.URXIFG) == 0x01

    def test_rx_interrupt_gated_by_enable(self, memory, uart):
        uart.receive_byte(0x42)
        uart.tick(1)
        assert not uart.interrupt_pending()
        memory.load_bytes(PeripheralRegisters.URCTL, bytes([0x01]))
        assert uart.interrupt_pending()

    def test_second_byte_waits_for_flag_clear(self, memory, uart):
        uart.receive_bytes(b"\x01\x02")
        uart.tick(1)
        uart.tick(1)
        assert memory.peek_byte(PeripheralRegisters.URXBUF) == 0x01
        uart.acknowledge_interrupt()
        uart.tick(1)
        assert memory.peek_byte(PeripheralRegisters.URXBUF) == 0x02

    def test_transmit_log(self, memory, uart):
        memory.load_bytes(PeripheralRegisters.UTXBUF, bytes([0x55]))
        memory.load_bytes(PeripheralRegisters.UTXIFG, bytes([0x01]))
        uart.tick(1)
        assert uart.transmitted_bytes() == b"\x55"


class TestDmaController:
    @pytest.fixture
    def dma(self, memory):
        dma = DmaController(memory)
        dma.reset()
        return dma

    def test_transfer_copies_words(self, memory, dma):
        memory.load_word(0x0300, 0xAAAA)
        memory.load_word(0x0302, 0xBBBB)
        dma.configure(source=0x0300, destination=0x0500, size_words=2)
        dma.trigger()
        dma.tick(1)
        dma.tick(1)
        assert memory.peek_word(0x0500) == 0xAAAA
        assert memory.peek_word(0x0502) == 0xBBBB

    def test_one_word_per_tick(self, memory, dma):
        dma.configure(source=0x0300, destination=0x0500, size_words=3)
        dma.trigger()
        dma.tick(1)
        assert dma.active
        assert dma.words_remaining == 2

    def test_activity_reported_per_tick(self, memory, dma):
        dma.configure(source=0x0300, destination=0x0500, size_words=1)
        dma.trigger()
        dma.tick(1)
        reads, writes = dma.collect_activity()
        assert len(reads) == 1 and len(writes) == 1
        assert writes[0].address == 0x0500
        dma.tick(1)
        reads, writes = dma.collect_activity()
        assert reads == [] and writes == []

    def test_completion_raises_interrupt_flag(self, memory, dma):
        dma.configure(source=0x0300, destination=0x0500, size_words=1)
        dma.trigger()
        dma.tick(1)
        assert dma.interrupt_pending()
        assert memory.peek_word(PeripheralRegisters.DMA0CTL) & DmaBits.IFG
        dma.acknowledge_interrupt()
        assert not dma.interrupt_pending()

    def test_idle_without_request(self, memory, dma):
        dma.configure(source=0x0300, destination=0x0500, size_words=1)
        dma.tick(1)
        assert not dma.active
        assert memory.peek_word(0x0500) == 0


class TestWatchdog:
    def test_expires_when_not_held(self, memory):
        watchdog = Watchdog(memory, interval=100)
        watchdog.reset()
        watchdog.tick(101)
        assert watchdog.expired

    def test_held_watchdog_never_expires(self, memory):
        watchdog = Watchdog(memory, interval=100)
        watchdog.reset()
        memory.load_word(
            PeripheralRegisters.WDTCTL, WatchdogBits.PASSWORD | WatchdogBits.HOLD
        )
        watchdog.tick(1000)
        assert not watchdog.expired

    def test_kick_reloads_counter(self, memory):
        watchdog = Watchdog(memory, interval=100)
        watchdog.reset()
        watchdog.tick(90)
        watchdog.kick()
        watchdog.tick(90)
        assert not watchdog.expired

    def test_clear_bit_write_reloads_counter(self, memory):
        # The conventional firmware service write (`MOV #0x5A08, &WDTCTL`)
        # must reload the countdown; before the fix only a direct
        # ``kick()`` call (which no firmware path issued) did.
        watchdog = Watchdog(memory, interval=100)
        watchdog.reset()
        watchdog.tick(90)
        memory.load_word(
            PeripheralRegisters.WDTCTL,
            WatchdogBits.PASSWORD | WatchdogBits.CLEAR,
        )
        watchdog.tick(90)
        assert not watchdog.expired
        watchdog.tick(20)
        assert watchdog.expired

    def test_clear_bit_reads_back_as_zero(self, memory):
        watchdog = Watchdog(memory, interval=100)
        watchdog.reset()
        memory.load_word(
            PeripheralRegisters.WDTCTL,
            WatchdogBits.PASSWORD | WatchdogBits.CLEAR,
        )
        watchdog.tick(1)
        control = memory.peek_word(PeripheralRegisters.WDTCTL)
        assert not control & WatchdogBits.CLEAR  # WDTCNTCL is a command bit

    def test_hold_and_clear_together(self, memory):
        watchdog = Watchdog(memory, interval=100)
        watchdog.reset()
        watchdog.tick(90)
        memory.load_word(
            PeripheralRegisters.WDTCTL,
            WatchdogBits.PASSWORD | WatchdogBits.HOLD | WatchdogBits.CLEAR,
        )
        watchdog.tick(1000)
        assert not watchdog.expired  # held
        memory.load_word(PeripheralRegisters.WDTCTL, WatchdogBits.PASSWORD)
        watchdog.tick(99)
        assert not watchdog.expired  # the clear reloaded before the hold
        watchdog.tick(2)
        assert watchdog.expired


class TestInterruptController:
    def test_peripheral_request_visible(self, memory, port1):
        controller = InterruptController()
        controller.attach(port1)
        memory.load_bytes(PeripheralRegisters.P1IE, bytes([0x01]))
        assert controller.highest_pending() is None
        port1.press_button()
        assert controller.highest_pending() == InterruptVectors.PORT1

    def test_priority_order(self, memory, port1):
        controller = InterruptController()
        controller.attach(port1)
        memory.load_bytes(PeripheralRegisters.P1IE, bytes([0x01]))
        port1.press_button()
        controller.inject(InterruptVectors.TIMER_A0)
        assert controller.highest_pending() == InterruptVectors.TIMER_A0

    def test_injected_request_clears_after_service(self):
        controller = InterruptController()
        controller.inject(5)
        controller.acknowledge(5)
        assert controller.highest_pending() is None
        assert controller.serviced[5] == 1

    def test_sticky_injection_persists(self):
        controller = InterruptController()
        controller.inject(5, sticky=True)
        controller.acknowledge(5)
        assert controller.highest_pending() == 5
        controller.clear_injected(5)
        assert controller.highest_pending() is None

    def test_acknowledge_notifies_peripheral(self, memory, port1):
        controller = InterruptController()
        controller.attach(port1)
        memory.load_bytes(PeripheralRegisters.P1IE, bytes([0x01]))
        port1.press_button()
        controller.acknowledge(InterruptVectors.PORT1)
        assert not port1.interrupt_pending()
        assert controller.total_serviced() == 1
