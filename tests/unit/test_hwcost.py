"""Unit tests for the hardware-cost model."""

import pytest

from repro.hwcost.monitors import (
    IRQ_CONSUMER_SUBMODULES,
    apex_hwmod,
    apex_irq_logic,
    asap_hwmod,
    asap_ivt_guard,
    pox_core,
    vrased_hwmod,
)
from repro.hwcost.netlist import (
    Module,
    aligned_region_decoder,
    equality_comparator,
    fsm_state,
    logic_function,
    magnitude_comparator,
    range_checker,
    register,
)
from repro.hwcost.report import compare_costs, figure6_comparison, synthesize_monitor


class TestNetlistPrimitives:
    def test_register_costs_only_flipflops(self):
        component = register("state", width=16)
        assert component.registers == 16
        assert component.luts == 0

    def test_logic_function_lut_packing(self):
        assert logic_function("f1", inputs=1).luts == 0
        assert logic_function("f4", inputs=4).luts == 1
        assert logic_function("f7", inputs=7).luts == 2
        assert logic_function("f10", inputs=10).luts == 3
        assert logic_function("dual", inputs=4, outputs=2).luts == 2

    def test_equality_vs_magnitude_vs_range(self):
        equality = equality_comparator("eq", 16)
        magnitude = magnitude_comparator("mag", 16)
        ranged = range_checker("range", 16)
        assert equality.luts < ranged.luts
        assert ranged.luts == 2 * magnitude.luts + 1

    def test_aligned_decoder_is_cheaper_than_range_check(self):
        assert aligned_region_decoder("ivt", 11).luts < range_checker("r", 16).luts

    def test_fsm_state_register_count(self):
        assert fsm_state("fsm2", states=2, transition_inputs=3).registers == 1
        assert fsm_state("fsm4", states=4, transition_inputs=3).registers == 2
        assert fsm_state("fsm5", states=5, transition_inputs=3).registers == 3

    def test_module_totals_and_breakdown(self):
        module = Module("top")
        module.add(register("r", 4))
        module.add(logic_function("f", inputs=7))
        child = Module("child")
        child.add(register("c", 2))
        module.add_module(child)
        assert module.total_registers() == 6
        assert module.total_luts() == 2
        assert module.breakdown()["child"]["registers"] == 2
        assert len(module.flatten_components()) == 3


class TestMonitorModules:
    def test_vrased_module_nonzero(self):
        module = vrased_hwmod()
        assert module.total_luts() > 0
        assert module.total_registers() > 0

    def test_pox_core_is_shared(self):
        # The shared core is identical in both stacks (AP2 adds nothing).
        assert pox_core().total_luts() == pox_core().total_luts()
        assert pox_core().total_registers() == pox_core().total_registers()

    def test_apex_irq_logic_covers_all_consumer_submodules(self):
        module = apex_irq_logic()
        gate_names = [component.name for component in module.components
                      if component.name.startswith("irq_gate_")]
        assert len(gate_names) == len(IRQ_CONSUMER_SUBMODULES)

    def test_asap_guard_has_single_state_register(self):
        module = asap_ivt_guard()
        fsm = [component for component in module.components
               if component.name == "ivt_guard_fsm"]
        assert fsm and fsm[0].registers == 1

    def test_full_stacks_include_vrased_and_core(self):
        for build in (apex_hwmod, asap_hwmod):
            names = {module.name for module in build().submodules}
            assert "vrased_hwmod" in names and "pox_core" in names


class TestFigure6Shape:
    def test_asap_smaller_than_apex_in_luts_and_registers(self):
        comparison = figure6_comparison()
        assert comparison.candidate.name == "asap_hwmod"
        assert comparison.lut_delta < 0
        assert comparison.register_delta < 0

    def test_delta_magnitude_close_to_paper(self):
        comparison = figure6_comparison()
        # Paper: ASAP uses 24 fewer LUTs and 3 fewer registers than APEX.
        assert 10 <= -comparison.lut_delta <= 40
        assert 1 <= -comparison.register_delta <= 6

    def test_rows_and_render(self):
        comparison = figure6_comparison()
        rows = comparison.rows()
        assert len(rows) == 3
        assert rows[0]["module"] == "apex_hwmod"
        text = comparison.render()
        assert "apex_hwmod" in text and "asap_hwmod" in text

    def test_synthesize_monitor_report(self):
        report = synthesize_monitor(asap_ivt_guard())
        assert report.luts == asap_ivt_guard().total_luts()
        assert "ivt_guard_fsm" in report.breakdown
        assert report.as_row()["module"] == "asap_ivt_guard"

    def test_compare_costs_generic(self):
        comparison = compare_costs(pox_core(), pox_core())
        assert comparison.lut_delta == 0
        assert comparison.register_delta == 0
