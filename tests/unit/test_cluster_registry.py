"""Unit tests for the cluster control plane's passive pieces.

The registry (membership + liveness with an injected clock), the
consistent-hash ring (deterministic placement, ~1/N movement on
membership change), the latency histogram / report containers and the
backpressure gate -- everything here is plain bookkeeping, exercised
without sockets or event loops (except the gate, which is an asyncio
semaphore by construction).
"""

import asyncio

import pytest

from repro.cluster import HashRing, WorkerRegistry
from repro.cluster.metrics import (
    BackpressureGate,
    ClusterReport,
    ShardStats,
)
from repro.obs.metrics import Histogram, MetricsRegistry


class FakeClock:
    """Injectable monotonic clock."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestWorkerRegistry:
    def make(self, timeout=1.0):
        clock = FakeClock()
        return WorkerRegistry(heartbeat_timeout=timeout, clock=clock), clock

    def test_join_beat_and_liveness(self):
        registry, clock = self.make()
        registry.join("w1")
        assert "w1" in registry and len(registry) == 1
        assert registry.alive("w1")
        clock.advance(0.9)
        assert registry.alive("w1") and registry.dead() == []
        assert registry.beat("w1")
        clock.advance(0.9)
        # The beat reset the liveness clock.
        assert registry.alive("w1")
        assert registry.get("w1").beats == 1
        assert registry.counters["beats"] == 1

    def test_silent_worker_goes_dead_after_timeout(self):
        registry, clock = self.make(timeout=1.0)
        registry.join("w1")
        registry.join("w2")
        registry.beat("w2")
        clock.advance(1.5)
        registry.beat("w2")
        assert registry.dead() == ["w1"]
        assert not registry.alive("w1") and registry.alive("w2")

    def test_evict_counts_and_removes(self):
        registry, clock = self.make()
        registry.join("w1")
        clock.advance(2.0)
        assert registry.evict("w1")
        assert "w1" not in registry
        assert registry.counters["evictions"] == 1
        # A second eviction of the same name is a no-op.
        assert not registry.evict("w1")
        assert registry.counters["evictions"] == 1

    def test_late_beat_does_not_resurrect_evicted_worker(self):
        registry, clock = self.make()
        registry.join("w1")
        clock.advance(2.0)
        registry.evict("w1")
        assert not registry.beat("w1")  # the straggler heartbeat
        assert "w1" not in registry and not registry.alive("w1")
        # Only an explicit re-join brings it back.
        registry.join("w1")
        assert registry.alive("w1")

    def test_leave_vs_evict_counters(self):
        registry, _clock = self.make()
        registry.join("w1")
        registry.join("w2")
        assert registry.leave("w1")
        assert not registry.leave("w1")
        assert registry.counters["leaves"] == 1
        assert registry.names() == ["w2"]

    def test_no_timeout_means_never_dead(self):
        clock = FakeClock()
        registry = WorkerRegistry(heartbeat_timeout=None, clock=clock)
        registry.join("w1")
        clock.advance(1e6)
        assert registry.dead() == [] and registry.alive("w1")

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            WorkerRegistry(heartbeat_timeout=0.0)


class TestHashRing:
    def test_lookup_is_deterministic_and_member(self):
        ring = HashRing(["a", "b", "c"])
        keys = ["prover-%04d" % n for n in range(200)]
        placement = ring.placement(keys)
        assert set(placement.values()) <= {"a", "b", "c"}
        # Same membership, fresh ring: identical placement.
        assert HashRing(["a", "b", "c"]).placement(keys) == placement

    def test_every_node_owns_some_keys(self):
        ring = HashRing(["a", "b", "c"])
        keys = ["prover-%04d" % n for n in range(300)]
        owners = set(ring.placement(keys).values())
        assert owners == {"a", "b", "c"}

    def test_membership_change_moves_a_minority_of_keys(self):
        keys = ["prover-%04d" % n for n in range(400)]
        ring = HashRing(["a", "b", "c", "d"])
        before = ring.placement(keys)
        ring.remove("d")
        after = ring.placement(keys)
        moved = sum(1 for key in keys if before[key] != after[key])
        # Removing one of four nodes must move ~1/4 of the keys; under
        # half is the (generous) consistency bar, and survivors' keys
        # must not move at all.
        assert 0 < moved < len(keys) // 2
        for key in keys:
            if before[key] != "d":
                assert after[key] == before[key]

    def test_add_is_the_inverse_of_remove(self):
        keys = ["prover-%04d" % n for n in range(200)]
        ring = HashRing(["a", "b"])
        before = ring.placement(keys)
        ring.add("c")
        ring.remove("c")
        assert ring.placement(keys) == before

    def test_duplicate_add_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError, match="already"):
            ring.add("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            HashRing(["a"]).remove("b")

    def test_empty_ring_lookup_is_none(self):
        assert HashRing().lookup("prover-0000") is None
        assert len(HashRing()) == 0

    def test_invalid_replicas_rejected(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)


class TestShardLatencyHistogram:
    """The shards' latency sampler is the telemetry-spine Histogram;
    these pin the LatencyRecorder semantics it replaced."""

    def test_percentiles_over_known_samples(self):
        recorder = Histogram()
        for value in range(1, 101):  # 1..100
            recorder.record(float(value))
        assert recorder.p50 == pytest.approx(50.0, abs=1.0)
        assert recorder.p99 == pytest.approx(99.0, abs=1.0)
        assert recorder.count == 100

    def test_empty_recorder_answers_zero(self):
        assert Histogram().p50 == 0.0
        assert Histogram().p99 == 0.0

    def test_window_is_bounded(self):
        recorder = Histogram(window=10)
        for value in range(100):
            recorder.record(float(value))
        # Only the most recent 10 samples (90..99) remain.
        assert recorder.count == 100
        assert recorder.percentile(0.0) == 90.0

    def test_bad_fraction_rejected(self):
        recorder = Histogram()
        recorder.record(1.0)
        with pytest.raises(ValueError, match="fraction"):
            recorder.percentile(1.5)


class TestBackpressureGate:
    def test_unbounded_gate_admits_everything(self):
        async def body():
            gate = BackpressureGate()
            assert await gate.acquire() and await gate.acquire()
            assert gate.inflight == 2
            gate.release()
            gate.release()
            assert gate.delayed == 0 and gate.shed == 0

        asyncio.run(body())

    def test_shed_mode_refuses_at_capacity(self):
        async def body():
            gate = BackpressureGate(max_inflight=1, mode="shed")
            assert await gate.acquire()
            assert not await gate.acquire()  # saturated: refused
            assert gate.shed == 1 and gate.inflight == 1
            gate.release()
            assert await gate.acquire()  # slot freed: admitted again

        asyncio.run(body())

    def test_delay_mode_waits_for_a_slot(self):
        async def body():
            gate = BackpressureGate(max_inflight=1, mode="delay")
            assert await gate.acquire()
            waiter = asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0.01)
            assert not waiter.done()  # parked at the gate, not refused
            gate.release()
            assert await waiter
            assert gate.delayed == 1 and gate.shed == 0

        asyncio.run(body())

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            BackpressureGate(mode="drop")
        with pytest.raises(ValueError, match="max_inflight"):
            BackpressureGate(max_inflight=0)


class TestClusterReport:
    def test_all_accepted_requires_traffic(self):
        report = ClusterReport(fleet_size=4, shard_count=2)
        assert not report.all_accepted()  # zero exchanges is not success
        report.exchanges = report.accepted = 8
        assert report.all_accepted()
        report.rejected = 1
        report.exchanges = 9
        assert not report.all_accepted()

    def test_shard_lookup(self):
        report = ClusterReport(fleet_size=1, shard_count=1,
                               shards=[ShardStats(shard="shard-0")])
        assert report.shard("shard-0").shard == "shard-0"
        assert report.shard("missing") is None

    def test_exchange_rate(self):
        report = ClusterReport(fleet_size=1, shard_count=1,
                               exchanges=10, elapsed_seconds=2.0)
        assert report.exchanges_per_second == 5.0

    def test_publish_projects_report_into_registry(self):
        report = ClusterReport(
            fleet_size=4, shard_count=2, exchanges=16, accepted=14,
            rejected=1, timed_out=1, shed=3, delayed=2,
            per_kind={"ra": 8, "pox": 8},
            shards=[ShardStats(shard="shard-0", exchanges=9, shed=3,
                               pending_challenges=1, p50_seconds=0.5),
                    ShardStats(shard="shard-1", exchanges=7, alive=False)])
        registry = MetricsRegistry(collect=False)
        report.publish(registry)
        snapshot = registry.snapshot()
        gauges = snapshot["gauges"]
        assert gauges["cluster.exchanges"] == 16
        assert gauges["cluster.shed"] == 3
        assert gauges["cluster.per_kind.pox"] == 8
        assert gauges["cluster.shard-0.shed"] == 3
        assert gauges["cluster.shard-0.p50_seconds"] == 0.5
        assert gauges["cluster.shard-1.alive"] == 0
