"""Unit tests for the pluggable crypto-backend registry.

The contract: ``pure`` (from-scratch reference) and ``fast``
(:mod:`hashlib`) are byte-identical on every digest, tag, derived key
and attestation measurement -- selecting a backend is purely a
performance decision -- and selection follows explicit argument >
set_backend/use_backend > ``REPRO_CRYPTO_BACKEND`` > default fast.
"""

import hashlib
import hmac as std_hmac

import pytest

from repro.crypto import backend as backend_module
from repro.crypto.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    ENV_VAR,
    HashlibSha256,
    backend_name,
    hasher_class,
    new_sha256,
    set_backend,
    sha256 as dispatching_sha256,
    use_backend,
)
from repro.crypto.hmac import Hmac, HmacKey, hmac_sha256
from repro.crypto.keys import DeviceKey
from repro.crypto.sha256 import Sha256
from repro.memory.layout import MemoryRegion
from repro.memory.memory import Memory
from repro.vrased.swatt import SwAtt


@pytest.fixture(autouse=True)
def _reset_backend_selection(monkeypatch):
    """Isolate every test from ambient backend selection."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    previous = backend_module._active
    set_backend(None)
    yield
    backend_module._active = previous


class TestRegistry:
    def test_both_backends_registered(self):
        assert BACKENDS["pure"] is Sha256
        assert BACKENDS["fast"] is HashlibSha256

    def test_default_is_fast(self):
        assert DEFAULT_BACKEND == "fast"
        assert backend_name() == "fast"
        assert isinstance(new_sha256(), HashlibSha256)

    def test_environment_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "pure")
        assert backend_name() == "pure"
        assert isinstance(new_sha256(), Sha256)

    def test_empty_environment_value_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "")
        assert backend_name() == "fast"

    def test_set_backend_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fast")
        set_backend("pure")
        assert backend_name() == "pure"
        set_backend(None)
        assert backend_name() == "fast"

    def test_explicit_argument_wins(self):
        set_backend("pure")
        assert isinstance(new_sha256(backend="fast"), HashlibSha256)

    def test_use_backend_scopes_and_restores(self):
        assert backend_name() == "fast"
        with use_backend("pure") as hasher:
            assert hasher is Sha256
            assert backend_name() == "pure"
        assert backend_name() == "fast"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("pure"):
                raise RuntimeError("boom")
        assert backend_name() == "fast"

    def test_unknown_backend_fails_loudly(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown crypto backend"):
            hasher_class("blake3")
        with pytest.raises(ValueError, match="unknown crypto backend"):
            set_backend("blake3")
        # A typoed environment variable must not silently run slow (or
        # at all): the first hash raises.
        monkeypatch.setenv(ENV_VAR, "fasst")
        with pytest.raises(ValueError, match="fasst"):
            new_sha256()

    def test_register_backend_extends_registry(self):
        class Doubler(HashlibSha256):
            pass

        backend_module.register_backend("doubler", Doubler)
        try:
            assert isinstance(new_sha256(backend="doubler"), Doubler)
        finally:
            del BACKENDS["doubler"]


class TestHashlibSha256Parity:
    """The fast backend exposes exactly the reference hasher's API."""

    def test_one_shot_and_hexdigest(self):
        assert HashlibSha256(b"abc").digest() == hashlib.sha256(b"abc").digest()
        assert HashlibSha256(b"abc").hexdigest() == hashlib.sha256(b"abc").hexdigest()

    def test_update_returns_self_for_chaining(self):
        hasher = HashlibSha256()
        assert hasher.update(b"a").update(b"b").digest() == \
            hashlib.sha256(b"ab").digest()

    def test_copy_is_independent(self):
        hasher = HashlibSha256(b"abc")
        clone = hasher.copy()
        clone.update(b"def")
        assert hasher.digest() == hashlib.sha256(b"abc").digest()
        assert clone.digest() == hashlib.sha256(b"abcdef").digest()

    def test_digest_does_not_consume_state(self):
        hasher = HashlibSha256(b"abc")
        assert hasher.digest() == hasher.digest()

    def test_accepts_memoryview_bytearray_and_int_iterables(self):
        expected = hashlib.sha256(b"\x01\x02\x03").digest()
        assert HashlibSha256(memoryview(b"\x01\x02\x03")).digest() == expected
        assert HashlibSha256(bytearray(b"\x01\x02\x03")).digest() == expected
        assert HashlibSha256([1, 2, 3]).digest() == expected

    @pytest.mark.parametrize("hasher_class", [Sha256, HashlibSha256])
    def test_accepts_non_contiguous_memoryview(self, hasher_class):
        # A strided view is not hashable zero-copy (hashlib raises
        # BufferError, the pure fast path needs contiguity); both
        # backends must fall back to a flattening copy, both below and
        # above one block.
        for size in (16, 1000):
            data = bytes(range(256)) * (size // 64 + 1)
            strided = memoryview(data)[:size * 2:2]
            expected = hashlib.sha256(bytes(strided)).digest()
            assert hasher_class(strided).digest() == expected, \
                (hasher_class.__name__, size)

    def test_class_constants(self):
        assert HashlibSha256.digest_size == Sha256.digest_size == 32
        assert HashlibSha256.block_size == Sha256.block_size == 64

    def test_dispatching_one_shot(self):
        assert dispatching_sha256(b"xyz") == hashlib.sha256(b"xyz").digest()
        assert dispatching_sha256(b"xyz", backend="pure") == \
            hashlib.sha256(b"xyz").digest()


class TestHmacKey:
    KEYS = [b"", b"Jefe", b"\x0b" * 20, bytes(range(256)), b"k" * 64]

    @pytest.mark.parametrize("backend", ["pure", "fast"])
    @pytest.mark.parametrize("key", KEYS)
    def test_matches_stdlib(self, backend, key):
        data = b"attested memory contents" * 9
        mac_key = HmacKey(key, backend=backend)
        expected = std_hmac.new(key, data, hashlib.sha256).digest()
        assert mac_key.tag(data) == expected
        assert mac_key.mac(data).digest() == expected

    def test_reusing_key_state_across_messages(self):
        mac_key = HmacKey(b"key")
        for message in (b"", b"one", b"two" * 100):
            assert mac_key.tag(message) == \
                std_hmac.new(b"key", message, hashlib.sha256).digest()

    def test_hmac_accepts_precomputed_key(self):
        mac_key = HmacKey(b"key")
        assert Hmac(mac_key, b"msg").digest() == hmac_sha256(b"key", b"msg")

    def test_key_state_bound_at_construction(self):
        with use_backend("pure"):
            mac_key = HmacKey(b"key")
            assert isinstance(mac_key._inner0, Sha256)
        # Backend switched back to fast; tags from the pure-bound state
        # still agree with a fresh fast computation.
        assert mac_key.tag(b"msg") == hmac_sha256(b"key", b"msg")


class TestBackendDifferential:
    """Measurements and tags are byte-identical across backends."""

    def _swatt_report(self):
        memory = Memory()
        memory.load_bytes(0, bytes(range(256)) * 256)
        device_key = DeviceKey("diff-device", b"\x77" * 32)
        swatt = SwAtt(device_key)
        regions = [MemoryRegion(0x0100, 0x02FF, "a"),
                   MemoryRegion(0xE000, 0xE0FF, "er")]
        return swatt.measure(
            memory, b"\xC3" * 32, regions,
            scalars={"EXEC": 1, "epoch": 7},
            snapshot_regions={"OR": MemoryRegion(0x0600, 0x063F, "or")},
        )

    def test_swatt_measurement_identical_across_backends(self):
        reports = {}
        for backend in ("pure", "fast"):
            with use_backend(backend):
                reports[backend] = self._swatt_report()
        assert reports["pure"].measurement == reports["fast"].measurement
        assert reports["pure"].snapshots == reports["fast"].snapshots
        assert reports["pure"].claims == reports["fast"].claims

    def test_measurement_pins_legacy_wire_format(self):
        """The streamed measure() must produce the exact bytes of the
        old concatenate-then-MAC construction (recomputed here with the
        standard library, so a format regression cannot hide)."""
        from repro.vrased.swatt import encode_region_descriptor, encode_scalar

        memory = Memory()
        memory.load_bytes(0, bytes(range(256)) * 256)
        device_key = DeviceKey("diff-device", b"\x77" * 32)
        challenge = b"\xC3" * 32
        regions = [MemoryRegion(0x0100, 0x02FF, "a"),
                   MemoryRegion(0xE000, 0xE0FF, "er")]
        scalars = {"EXEC": 1, "epoch": 7}

        message = challenge
        for region in regions:
            message += encode_region_descriptor(region)
            message += memory.dump_region(region)
        for name in sorted(scalars):
            message += encode_scalar(name, scalars[name])
        expected = std_hmac.new(device_key.attestation_key(), message,
                                hashlib.sha256).digest()

        for backend in ("pure", "fast"):
            with use_backend(backend):
                report = SwAtt(device_key).measure(memory, challenge, regions,
                                                   scalars=scalars)
                assert report.measurement == expected, backend

    def test_cross_backend_prover_and_verifier_agree(self):
        """A report measured by a pure-backend prover verifies against a
        fast-backend verifier's recomputation (and vice versa) -- the
        deployment shape where the two ends run different hosts."""
        memory = Memory()
        memory.load_bytes(0, bytes(range(256)) * 256)
        device_key = DeviceKey("diff-device", b"\x77" * 32)
        challenge = b"\x3C" * 32
        region = MemoryRegion(0x0100, 0x02FF, "a")
        contents = [(region, memory.dump_region(region))]

        for prover_backend, verifier_backend in (("pure", "fast"),
                                                 ("fast", "pure")):
            with use_backend(prover_backend):
                report = SwAtt(device_key).measure(memory, challenge, [region])
            with use_backend(verifier_backend):
                expected = SwAtt.expected_measurement(device_key, challenge,
                                                      contents)
            assert report.measurement == expected, (prover_backend,
                                                    verifier_backend)

    def test_full_pox_exchange_cross_checked_by_other_backend(self):
        """Run the whole PoX exchange under each backend, then recompute
        the report's measurement with the *other* backend from the
        device's final memory state -- the two implementations must
        agree on every real experiment vector, not just synthetic ones."""
        from repro import PoxTestbench, TestbenchConfig, blinker_firmware

        for backend, other in (("pure", "fast"), ("fast", "pure")):
            with use_backend(backend):
                bench = PoxTestbench(blinker_firmware(authorized=True),
                                     TestbenchConfig(architecture="asap"))
                result = bench.run_pox(
                    setup=lambda device: device.schedule_button_press(6))
                assert result.accepted, backend
            contents = [(region, bench.device.memory.dump_region(region))
                        for region in bench.protocol._measured_regions()]
            with use_backend(other):
                recomputed = SwAtt.expected_measurement(
                    bench.protocol.device_key,
                    bench.protocol._active_challenge,
                    contents,
                    scalars={"EXEC": 1},
                )
            assert result.report.measurement == recomputed, (backend, other)
