"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
the package can be installed in editable mode on minimal offline
environments that lack the ``wheel`` package (``pip install -e .
--no-use-pep517 --no-build-isolation`` or ``python setup.py develop``).
"""

from setuptools import setup

setup()
